module Generator = Mrm_ctmc.Generator
module Poisson = Mrm_ctmc.Poisson
module Vec = Mrm_linalg.Vec
module Special = Mrm_util.Special
module Pool = Mrm_engine.Pool
module Partition = Mrm_engine.Partition
module Kernel = Mrm_engine.Kernel
module Trace = Mrm_obs.Trace
module Metrics = Mrm_obs.Metrics

(* Observability: per-solve counters/gauges and spans (see Mrm_obs).
   Recording is observational only — the computed values are bit-for-bit
   identical with tracing on or off. *)
let m_solves = Metrics.counter "randomization.solves"
let m_iterations = Metrics.counter "randomization.iterations"
let m_terms_skipped = Metrics.counter "randomization.terms_skipped"
let m_truncation = Metrics.gauge "randomization.truncation_point"

let record_truncation g =
  Metrics.incr ~by:g m_iterations;
  Metrics.set m_truncation (float_of_int g);
  Trace.add_attr "G" (Trace.Int g)

type diagnostics = {
  q : float;
  d : float;
  shift : float;
  iterations : int;
  eps : float;
  log_error_bound : float;
}

type result = { moments : float array array; diagnostics : diagnostics }

(* Closed-form path for models without transitions (q = 0): each state is a
   plain Brownian motion, eq. (6) decouples. *)
let moments_no_transitions model ~t ~order =
  let n = Model.dim model in
  Array.init (order + 1) (fun k ->
      Array.init n (fun i ->
          Mrm_brownian.Brownian.raw_moment
            (Model.brownian_of_state model i)
            ~t k))

(* Map moments of the shifted process B~ back to B = B~ + shift * t via the
   binomial expansion of (B~ + c)^n with c = shift * t.

   The coefficient C(n, j) c^j is computed in log space: for high orders
   (n beyond ~25 with a large |c|) the two factors overflow individually
   even when their product — let alone the final sum — is representable.
   c <= 0 always (shift < 0, t >= 0), so the sign alternates with j. *)
let unshift_coefficient ~log_abs_c ~negative n j =
  if j = 0 then 1.
  else begin
    let log_magnitude =
      Special.log_factorial n
      -. Special.log_factorial j
      -. Special.log_factorial (n - j)
      +. (float_of_int j *. log_abs_c)
    in
    let magnitude = exp log_magnitude in
    if negative && j land 1 = 1 then -.magnitude else magnitude
  end

let unshift_moments ~shift ~t shifted =
  let c = shift *. t in
  if c = 0. then shifted
  else begin
    let log_abs_c = log (abs_float c) in
    let negative = c < 0. in
    let order = Array.length shifted - 1 in
    let n_states = Array.length shifted.(0) in
    Array.init (order + 1) (fun n ->
        Array.init n_states (fun i ->
            let acc = ref 0. in
            for j = 0 to n do
              acc :=
                !acc
                +. unshift_coefficient ~log_abs_c ~negative n j
                   *. shifted.(n - j).(i)
            done;
            !acc))
  end

(* Truncation point from Theorem 4, with a corrected tail index. The
   paper's appendix bounds the truncated series by
   2 d^n n! (qt)^n sum_{k >= G+n+1} Pois(qt; k), but the substitution
   w_k k!/(k-n)! = (qt)^n w_{k-n} actually shifts the index the other way:
   the tail starts at G+1-n. We therefore pick the smallest G with
   2 d^n n! (qt)^n * P(Pois(qt) >= G+1-n) < eps (G is larger than the
   paper's by about 2n; validated empirically in the test suite). *)
let truncation_point ~d ~lambda ~order ~eps =
  if not (Float.is_finite lambda) || lambda < 0. then
    invalid_arg "Randomization.truncation_point: requires finite lambda >= 0";
  if lambda = 0. then
    (* Pois(0) is a point mass at k = 0, but the U-recursion still needs
       [order] steps to feed the lower-order terms through; without this
       short circuit [log lambda = -inf] poisons [log_prefactor] below. *)
    max 1 order
  else if order = 0 then
    (* V^(0) is exact (row sums are 1); a single term suffices, but we keep
       enough terms for the weights to sum to ~1. *)
    Poisson.tail_quantile ~lambda ~log_eps:(log eps)
  else begin
    let log_prefactor =
      log 2.
      +. (float_of_int order *. log d)
      +. Special.log_factorial order
      +. (float_of_int order *. log lambda)
    in
    let log_eps = log eps -. log_prefactor in
    let m = Poisson.tail_quantile ~lambda ~log_eps in
    max 1 (m + order - 1)
  end

(* Pre-solve static verification (the ?validate flag): all of Check's
   passes with this solve's configuration; raises Check.Failed listing
   the violated MRM codes. *)
let validate_model model ~t ~order ~eps ~jobs =
  Mrm_check.Check.validate_exn
    ~config:{ Mrm_check.Check.t; order; eps; q = None; d = None; jobs }
    (Model.check_data model)

(* ------------------------------------------------------------------ *)
(* The fused, double-buffered uniformization sweep shared by the
   sequential and parallel paths.

   Execution context: the detected matrix structure (tridiagonal band
   for birth-death generators, CSR otherwise) plus a row partition.
   With a multi-domain pool the partition is pinned — exactly one
   range per pool party ([Partition.pinned]) — so [Kernel.sweep] can
   keep every party on its own rows for all G iterations with a single
   barrier per iteration. Without a pool (or with 1 job) the same
   round bodies run in the caller over one full-width range, which is
   bit-for-bit identical because rounds write disjoint row slices. *)

type sweep_ctx = {
  sw_pool : Pool.t option;
  sw_partition : Partition.t;
  sw_structure : Kernel.structure;
}

let sweep_context pool q' ~n_states =
  let structure = Kernel.detect q' in
  Trace.add_attr "structure" (Trace.Str (Kernel.structure_kind structure));
  match pool with
  | Some p when Pool.jobs p > 1 ->
      {
        sw_pool = Some p;
        sw_partition = Partition.pinned ~jobs:(Pool.jobs p) q';
        sw_structure = structure;
      }
  | _ ->
      {
        sw_pool = None;
        sw_partition = Partition.uniform ~parts:1 ~rows:n_states;
        sw_structure = structure;
      }

let pool_jobs = function None -> 1 | Some pool -> Pool.jobs pool

(* Run the whole recursion: G rounds, round k advancing U(k) -> U(k+1)
   and folding U(k+1) into the accumulators listed in [terms.(k+1)].

   U^(j)(k+1) = Q' U^(j)(k) + R' U^(j-1)(k) + (1/2) S' U^(j-2)(k);
   U^(0)(k) = h always (the generator is conservative), kept implicit
   as the shared, never-written [ones] vector at index 0 of both
   buffers. Reads go to the current buffer, writes to the next, so one
   barrier per round suffices and every per-row quantity is computed
   in a single pass: the matrix row is walked once for all orders
   ([Kernel.mv_fused]), then the reward-vector terms are added in the
   original element-wise operation order (dot, then the R' term, then
   the S' term, highest order first), then the step's Poisson terms
   are folded into their accumulator blocks. The element-wise
   operation sequence is exactly the one the historic
   advance/accumulate pair performed, so results are bit-for-bit
   unchanged — sequential or parallel, CSR or tridiagonal.

   [terms.(k)] lists the (weight, accumulator-block) pairs step k
   contributes to; zero-weight terms were dropped (and counted) by the
   caller. [terms.(0)] is never read: U^(j)(0) = 0 for j >= 1, and
   adding w * 0. to a +0. accumulator leaves +0. bit-for-bit, so the
   historic k = 0 accumulation was a no-op. *)
let run_sweep ctx ~r' ~s' ~order ~n_states ~g ~terms =
  let ones = Vec.ones n_states in
  let make_u () =
    Array.init (order + 1) (fun j ->
        if j = 0 then ones else Vec.zeros n_states)
  in
  let buf_a = make_u () and buf_b = make_u () in
  (* Kernel views, highest order first, mirroring the historic loop. *)
  let heads buf = Array.init order (fun idx -> buf.(order - idx)) in
  let heads_a = heads buf_a and heads_b = heads buf_b in
  let body ~round ~lo ~hi =
    let cur, next, xs, ys =
      if round land 1 = 0 then (buf_a, buf_b, heads_a, heads_b)
      else (buf_b, buf_a, heads_b, heads_a)
    in
    Kernel.mv_fused ctx.sw_structure xs ys ~lo ~hi;
    for j = order downto 1 do
      let nj = next.(j) and cj1 = cur.(j - 1) in
      for i = lo to hi - 1 do
        nj.(i) <- nj.(i) +. (r'.(i) *. cj1.(i))
      done;
      if j >= 2 then begin
        let cj2 = cur.(j - 2) in
        for i = lo to hi - 1 do
          nj.(i) <- nj.(i) +. (0.5 *. s'.(i) *. cj2.(i))
        done
      end
    done;
    List.iter
      (fun (w, acc) ->
        for j = 1 to order do
          let accj = acc.(j) and nj = next.(j) in
          for i = lo to hi - 1 do
            accj.(i) <- accj.(i) +. (w *. nj.(i))
          done
        done)
      terms.(round + 1)
  in
  Kernel.sweep ctx.sw_pool ctx.sw_partition ~rounds:g body

let moments ?(validate = false) ?(eps = 1e-9) ?pool model ~t ~order =
  if validate then
    validate_model model ~t ~order ~eps ~jobs:(pool_jobs pool);
  (* [t < 0.] alone lets NaN and infinity through (every comparison with
     NaN is false), silently poisoning the whole solve — require a
     finite, non-negative horizon outright. *)
  if not (Float.is_finite t) || t < 0. then
    invalid_arg "Randomization.moments: requires finite t >= 0";
  if order < 0 then invalid_arg "Randomization.moments: requires order >= 0";
  if not (eps > 0.) then invalid_arg "Randomization.moments: requires eps > 0";
  Trace.with_span "randomization.moments"
    ~attrs:
      [ ("t", Trace.Float t); ("order", Trace.Int order);
        ("eps", Trace.Float eps) ]
  @@ fun () ->
  Metrics.incr m_solves;
  let n_states = Model.dim model in
  let q = Generator.uniformization_rate model.Model.generator in
  let trivial_diag ~d ~shift =
    { q; d; shift; iterations = 0; eps; log_error_bound = neg_infinity }
  in
  if t = 0. then begin
    (* Exact short circuit: B(0) = 0, so moment 0 is 1 and every higher
       moment vanishes; no truncation point is involved (computing one
       would need log(lambda) with lambda = qt = 0). *)
    Trace.add_attr "path" (Trace.Str "t=0");
    let moments =
      Array.init (order + 1) (fun n ->
          if n = 0 then Vec.ones n_states else Vec.zeros n_states)
    in
    { moments; diagnostics = trivial_diag ~d:0. ~shift:0. }
  end
  else if q = 0. then begin
    Trace.add_attr "path" (Trace.Str "no-transitions");
    {
      moments = moments_no_transitions model ~t ~order;
      diagnostics = trivial_diag ~d:0. ~shift:0.;
    }
  end
  else begin
    (* Shift drifts to be non-negative (paper, Section 6). *)
    let min_rate = Model.min_rate model in
    let shift = if min_rate < 0. then min_rate else 0. in
    let shifted_rates = Array.map (fun r -> r -. shift) model.Model.rates in
    let max_shifted_rate = Array.fold_left Float.max 0. shifted_rates in
    let max_std_dev = Model.max_std_dev model in
    (* Minimal d making both R' and S' substochastic (see .mli note). *)
    let d = Float.max (max_shifted_rate /. q) (max_std_dev /. sqrt q) in
    if d = 0. then begin
      Trace.add_attr "path" (Trace.Str "zero-rewards");
      (* All shifted rates and variances vanish: B~ is identically 0. *)
      let shifted =
        Array.init (order + 1) (fun n ->
            if n = 0 then Vec.ones n_states else Vec.zeros n_states)
      in
      {
        moments = unshift_moments ~shift ~t shifted;
        diagnostics = trivial_diag ~d:0. ~shift;
      }
    end
    else begin
      let lambda = q *. t in
      let g, q', r', s' =
        Trace.with_span "randomization.setup" (fun () ->
            let g = truncation_point ~d ~lambda ~order ~eps in
            let q' = Generator.uniformized model.Model.generator ~rate:q in
            let r' = Array.map (fun r -> r /. (q *. d)) shifted_rates in
            let s' =
              Array.map (fun v -> v /. (q *. d *. d)) model.Model.variances
            in
            (g, q', r', s'))
      in
      record_truncation g;
      Trace.add_attr "q" (Trace.Float q);
      Trace.add_attr "d" (Trace.Float d);
      (* Accumulators acc.(j) build sum_k Pois(lambda;k) U^(j)(k).
         U^(0)(k) = h for every k because the generator is conservative
         (Q' h = h), so order 0 is kept implicit and costs nothing. *)
      let acc = Array.init (order + 1) (fun _ -> Vec.zeros n_states) in
      let ctx = sweep_context pool q' ~n_states in
      Trace.with_span "randomization.sweep" ~attrs:[ ("G", Trace.Int g) ]
        (fun () ->
          let terms =
            Array.init (g + 1) (fun k ->
                let w = Poisson.pmf ~lambda k in
                if w > 0. then [ (w, acc) ]
                else begin
                  Metrics.incr m_terms_skipped;
                  []
                end)
          in
          if order >= 1 then run_sweep ctx ~r' ~s' ~order ~n_states ~g ~terms);
      (* V^(n) = n! d^n * acc_n; V^(0) = h exactly. *)
      let shifted_moments =
        Trace.with_span "randomization.finalize" (fun () ->
            Array.init (order + 1) (fun n ->
                if n = 0 then Vec.ones n_states
                else begin
                  let factor = Special.factorial n *. (d ** float_of_int n) in
                  Vec.scale factor acc.(n)
                end))
      in
      let log_error_bound =
        if order = 0 then neg_infinity
        else
          log 2.
          +. (float_of_int order *. log d)
          +. Special.log_factorial order
          +. (float_of_int order *. log lambda)
          +. Poisson.log_tail ~lambda (max 0 (g + 1 - order))
      in
      {
        moments = unshift_moments ~shift ~t shifted_moments;
        diagnostics = { q; d; shift; iterations = g; eps; log_error_bound };
      }
    end
  end

let moments_at_times ?(validate = false) ?(eps = 1e-9) ?pool model ~times
    ~order =
  if validate then begin
    let horizon = Array.fold_left Float.max 0. times in
    validate_model model ~t:horizon ~order ~eps ~jobs:(pool_jobs pool)
  end;
  if order < 0 then invalid_arg "Randomization.moments_at_times: order >= 0";
  if not (eps > 0.) then
    invalid_arg "Randomization.moments_at_times: requires eps > 0";
  Array.iter
    (fun t ->
      if not (Float.is_finite t) || t < 0. then
        invalid_arg "Randomization.moments_at_times: requires finite t >= 0")
    times;
  Trace.with_span "randomization.moments_at_times"
    ~attrs:
      [ ("times", Trace.Int (Array.length times));
        ("order", Trace.Int order); ("eps", Trace.Float eps) ]
  @@ fun () ->
  let n_states = Model.dim model in
  let q = Generator.uniformization_rate model.Model.generator in
  let needs_sweep t = t > 0. && q > 0. in
  let min_rate = Model.min_rate model in
  let shift = if min_rate < 0. then min_rate else 0. in
  let shifted_rates = Array.map (fun r -> r -. shift) model.Model.rates in
  let max_shifted_rate = Array.fold_left Float.max 0. shifted_rates in
  let max_std_dev = Model.max_std_dev model in
  let d = Float.max (max_shifted_rate /. q) (max_std_dev /. sqrt q) in
  if
    Array.for_all (fun t -> not (needs_sweep t)) times
    || d = 0. || order = 0
  then
    (* Degenerate cases: the pointwise solver handles each closed-form
       path; no shared sweep is needed. *)
    Array.map (fun t -> moments ~eps ?pool model ~t ~order) times
  else begin
    (* Truncation: one sweep to the largest per-time G. *)
    let g_of_t = Array.map (fun t ->
        if needs_sweep t then
          truncation_point ~d ~lambda:(q *. t) ~order ~eps
        else 0) times
    in
    let g = Array.fold_left max 1 g_of_t in
    Metrics.incr m_solves;
    record_truncation g;
    let q' = Generator.uniformized model.Model.generator ~rate:q in
    let r' = Array.map (fun r -> r /. (q *. d)) shifted_rates in
    let s' = Array.map (fun v -> v /. (q *. d *. d)) model.Model.variances in
    (* One accumulator block per requested time point. *)
    let accumulators =
      Array.map
        (fun _ -> Array.init (order + 1) (fun _ -> Vec.zeros n_states))
        times
    in
    let ctx = sweep_context pool q' ~n_states in
    Trace.with_span "randomization.sweep" ~attrs:[ ("G", Trace.Int g) ]
      (fun () ->
        let terms =
          Array.init (g + 1) (fun k ->
              let step_terms = ref [] in
              Array.iteri
                (fun time_index t ->
                  if needs_sweep t && k <= g_of_t.(time_index) then begin
                    let w = Poisson.pmf ~lambda:(q *. t) k in
                    if w > 0. then
                      step_terms := (w, accumulators.(time_index)) :: !step_terms
                    else Metrics.incr m_terms_skipped
                  end)
                times;
              !step_terms)
        in
        run_sweep ctx ~r' ~s' ~order ~n_states ~g ~terms);
    Array.mapi
      (fun time_index t ->
        if not (needs_sweep t) then moments ~eps ?pool model ~t ~order
        else begin
          let lambda = q *. t in
          let shifted_moments =
            Array.init (order + 1) (fun n ->
                if n = 0 then Vec.ones n_states
                else
                  Vec.scale
                    (Special.factorial n *. (d ** float_of_int n))
                    accumulators.(time_index).(n))
          in
          let g_t = g_of_t.(time_index) in
          let log_error_bound =
            log 2.
            +. (float_of_int order *. log d)
            +. Special.log_factorial order
            +. (float_of_int order *. log lambda)
            +. Poisson.log_tail ~lambda (max 0 (g_t + 1 - order))
          in
          {
            moments = unshift_moments ~shift ~t shifted_moments;
            diagnostics =
              { q; d; shift; iterations = g_t; eps; log_error_bound };
          }
        end)
      times
  end

let moment ?eps model ~t ~order =
  let { moments = m; _ } = moments ?eps model ~t ~order in
  Vec.dot model.Model.initial m.(order)

let moment_series ?(validate = false) ?eps ?pool model ~times ~order =
  (* One multi-time sweep instead of restarting the recursion per time
     point — G(t_max) matrix products total rather than sum_i G(t_i). *)
  Trace.with_span "randomization.moment_series"
    ~attrs:
      [ ("times", Trace.Int (Array.length times)); ("order", Trace.Int order) ]
  @@ fun () ->
  let results = moments_at_times ~validate ?eps ?pool model ~times ~order in
  Array.mapi
    (fun k { moments = m; _ } ->
      ( times.(k),
        Array.init (order + 1) (fun n -> Vec.dot model.Model.initial m.(n)) ))
    results

let mean ?eps model ~t = moment ?eps model ~t ~order:1

let variance ?eps model ~t =
  let { moments = m; _ } = moments ?eps model ~t ~order:2 in
  let pi = model.Model.initial in
  let m1 = Vec.dot pi m.(1) and m2 = Vec.dot pi m.(2) in
  m2 -. (m1 *. m1)

let central_moment ?eps model ~t ~order =
  let { moments = m; _ } = moments ?eps model ~t ~order in
  let pi = model.Model.initial in
  let raw = Array.init (order + 1) (fun n -> Vec.dot pi m.(n)) in
  let mu = raw.(1) in
  let acc = ref 0. in
  for j = 0 to order do
    acc :=
      !acc
      +. Special.binomial order j
         *. ((-.mu) ** float_of_int j)
         *. raw.(order - j)
  done;
  !acc
