module Generator = Mrm_ctmc.Generator
module Transient = Mrm_ctmc.Transient

type t = {
  generator : Generator.t;
  rates : float array;
  variances : float array;
  initial : float array;
}

let make ~generator ~rates ~variances ~initial =
  let n = Generator.dim generator in
  if Array.length rates <> n then
    invalid_arg
      (Printf.sprintf "Model.make: %d rates for %d states"
         (Array.length rates) n);
  if Array.length variances <> n then
    invalid_arg
      (Printf.sprintf "Model.make: %d variances for %d states"
         (Array.length variances) n);
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) then
        invalid_arg (Printf.sprintf "Model.make: rate %g at state %d" r i))
    rates;
  Array.iteri
    (fun i v ->
      if not (Float.is_finite v) || v < 0. then
        invalid_arg
          (Printf.sprintf "Model.make: variance %g at state %d" v i))
    variances;
  Transient.validate_initial ~dim:n initial;
  {
    generator;
    rates = Array.copy rates;
    variances = Array.copy variances;
    initial = Array.copy initial;
  }

let dim m = Generator.dim m.generator
let is_first_order m = Array.for_all (fun v -> v = 0.) m.variances

let first_order ~generator ~rates ~initial =
  make ~generator ~rates
    ~variances:(Array.make (Generator.dim generator) 0.)
    ~initial

let with_variances m variances =
  make ~generator:m.generator ~rates:m.rates ~variances ~initial:m.initial

let min_rate m = Array.fold_left Float.min infinity m.rates
let max_rate m = Array.fold_left Float.max neg_infinity m.rates

let max_std_dev m =
  sqrt (Array.fold_left Float.max 0. m.variances)

let brownian_of_state m i =
  if i < 0 || i >= dim m then
    invalid_arg "Model.brownian_of_state: state out of range";
  { Mrm_brownian.Brownian.drift = m.rates.(i); variance = m.variances.(i) }

let check_data m =
  Mrm_check.Check.data
    ~q_matrix:(Generator.matrix m.generator)
    ~rates:m.rates ~variances:m.variances ~initial:m.initial

let pp ppf m =
  Format.fprintf ppf
    "@[<v>second-order MRM: %d states, r in [%g, %g], sigma^2 in [0, %g]%s@]"
    (dim m) (min_rate m) (max_rate m)
    (Array.fold_left Float.max 0. m.variances)
    (if is_first_order m then " (first-order)" else "")
