(** First-order (ordinary) Markov reward model solver — the paper's
    baseline. Runs the same randomization recursion with the [S'] term
    absent ([sigma_i^2 = 0]); the paper stresses that the second-order
    analysis has "practically the same" cost, which the benchmark harness
    quantifies. *)

val moments :
  ?eps:float -> Model.t -> t:float -> order:int -> Randomization.result
(** @raise Invalid_argument if the model has any non-zero variance. *)

val moment : ?eps:float -> Model.t -> t:float -> order:int -> float
val mean : ?eps:float -> Model.t -> t:float -> float

val expected_reward_integral :
  ?eps:float -> Model.t -> t:float -> steps:int -> float
(** Independent oracle for the mean: [E B(t) = int_0^t p(u) r du],
    evaluated with Simpson's rule on uniformization-computed transient
    probabilities. Used by the test suite; exposed because it is handy for
    validating models. *)
