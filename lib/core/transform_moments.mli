(** Third, independent route to the moments: solve the moment recursion in
    Laplace ([s]) domain and invert numerically.

    Taking the (single-sided) Laplace transform of eq. (6) gives

    [V*^(0)(s) = (sI - Q)^{-1} h]
    [V*^(n)(s) = (sI - Q)^{-1} (n R V*^(n-1)(s) + n(n-1)/2 S V*^(n-2)(s))]

    which is evaluated with dense LU solves at the real abscissae of the
    Gaver–Stehfest inversion formula. This is the eq.-(5) "double
    transform domain" road of the paper restricted to moments; it is
    limited to small models (dense O(n^3) factorizations) and to moderate
    accuracy (Gaver–Stehfest loses roughly 0.9 digits per stage in
    binary64), and exists to cross-validate the other solvers. *)

val moments : ?stages:int -> Model.t -> t:float -> order:int -> float array array
(** Same layout as {!Randomization.moments}. [stages] is the (even)
    Gaver–Stehfest parameter, default 12; usable range 4–18.
    @raise Invalid_argument if [t <= 0], [order < 0] or [stages] odd/out of
    range. *)

val moment : ?stages:int -> Model.t -> t:float -> order:int -> float

val stehfest_coefficients : int -> float array
(** The inversion weights [zeta_k], 1-indexed as [coefficients.(k-1)];
    exposed for testing (they satisfy [sum zeta_k = 0] for [stages >= 2]
    and reproduce [f(t)=1] from [F(s)=1/s]). *)
