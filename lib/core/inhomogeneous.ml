module Generator = Mrm_ctmc.Generator
module Transient = Mrm_ctmc.Transient
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

type t = {
  states : int;
  generator : float -> Generator.t;
  rates : float -> float array;
  variances : float -> float array;
  initial : float array;
}

let make ~states ~generator ~rates ~variances ~initial =
  if states <= 0 then invalid_arg "Inhomogeneous.make: states > 0";
  Transient.validate_initial ~dim:states initial;
  (* Probe the callbacks once at t = 0 to catch dimension bugs early. *)
  let check_probe t =
    if not (Int.equal (Generator.dim (generator t)) states) then
      invalid_arg "Inhomogeneous.make: generator dimension mismatch";
    if Array.length (rates t) <> states then
      invalid_arg "Inhomogeneous.make: rates dimension mismatch";
    if Array.length (variances t) <> states then
      invalid_arg "Inhomogeneous.make: variances dimension mismatch";
    Array.iter
      (fun v ->
        if v < 0. || not (Float.is_finite v) then
          invalid_arg "Inhomogeneous.make: invalid variance")
      (variances t)
  in
  check_probe 0.;
  { states; generator; rates; variances; initial = Array.copy initial }

let of_homogeneous (m : Model.t) =
  {
    states = Model.dim m;
    generator = (fun _ -> m.Model.generator);
    rates = (fun _ -> m.Model.rates);
    variances = (fun _ -> m.Model.variances);
    initial = Array.copy m.Model.initial;
  }

let moments ?(tol = 1e-10) ?(breakpoints = [||]) model ~t ~order =
  if t < 0. then invalid_arg "Inhomogeneous.moments: requires t >= 0";
  if order < 0 then invalid_arg "Inhomogeneous.moments: requires order >= 0";
  let n = model.states in
  let horizon = t in
  (* The moment system is a BACKWARD equation: V_i(s) = E[B over (s, T)^n |
     Z(s) = i] satisfies -dV/ds = Q(s) V + ..., V(T) = initial condition.
     Substituting u = T - s gives a forward ODE whose coefficients are
     evaluated at reversed time T - u. (For a homogeneous model the
     direction is invisible; for switching generators it is not — the
     two-segment composition test in the suite pins this down.) *)
  let rhs ~t:u ~y =
    let clock = Float.max 0. (horizon -. u) in
    let qm = Generator.matrix (model.generator clock) in
    let rates = model.rates clock and variances = model.variances clock in
    let dy = Array.make (n * (order + 1)) 0. in
    for j = 0 to order do
      let qv = Sparse.mv qm (Array.sub y (j * n) n) in
      let jf = float_of_int j in
      for i = 0 to n - 1 do
        let drift =
          if j >= 1 then jf *. rates.(i) *. y.(((j - 1) * n) + i) else 0.
        in
        let diffusion =
          if j >= 2 then
            0.5 *. jf *. (jf -. 1.) *. variances.(i) *. y.(((j - 2) * n) + i)
          else 0.
        in
        dy.((j * n) + i) <- qv.(i) +. drift +. diffusion
      done
    done;
    dy
  in
  let y0 = Array.make (n * (order + 1)) 0. in
  for i = 0 to n - 1 do
    y0.(i) <- 1.
  done;
  let y =
    if t = 0. then y0
    else begin
      (* Integrate piecewise between user-declared coefficient
         discontinuities; an adaptive stepper cannot reliably detect a
         jump in the vector field on its own. *)
      (* Breakpoints are given in model time; map them to the reversed
         integration clock u = T - s. *)
      let cuts =
        Array.to_list breakpoints
        |> List.map (fun s -> horizon -. s)
        |> List.filter (fun u -> u > 0. && u < t)
        |> List.sort_uniq Float.compare
      in
      let segments =
        let rec build from = function
          | [] -> [ (from, t) ]
          | cut :: rest -> (from, cut) :: build cut rest
        in
        build 0. cuts
      in
      List.fold_left
        (fun y (t0, t1) ->
          if t1 <= t0 then y
          else begin
            let q0 = Generator.uniformization_rate (model.generator t0) in
            let dt0 =
              if q0 > 0. then Float.min ((t1 -. t0) /. 10.) (0.5 /. q0)
              else (t1 -. t0) /. 10.
            in
            Mrm_ode.Ode.rkf45 rhs ~t0 ~t1 ~tol ~dt0 y
          end)
        y0 segments
    end
  in
  Array.init (order + 1) (fun j -> Array.sub y (j * n) n)

let moment ?tol ?breakpoints model ~t ~order =
  let m = moments ?tol ?breakpoints model ~t ~order in
  Vec.dot model.initial m.(order)

let mean ?tol ?breakpoints model ~t = moment ?tol ?breakpoints model ~t ~order:1
