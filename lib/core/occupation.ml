module Generator = Mrm_ctmc.Generator
module Vec = Mrm_linalg.Vec

let indicator_rates g states =
  let n = Generator.dim g in
  let rates = Array.make n 0. in
  List.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Occupation: state out of range";
      if rates.(s) <> 0. then invalid_arg "Occupation: duplicate state";
      rates.(s) <- 1.)
    states;
  rates

let occupation_model g ~initial ~states =
  Model.first_order ~generator:g ~rates:(indicator_rates g states) ~initial

let expected_time_in ?eps g ~initial ~states ~t =
  Randomization.mean ?eps (occupation_model g ~initial ~states) ~t

let interval_availability_moments ?eps g ~initial ~states ~t ~order =
  if t <= 0. then
    invalid_arg "Occupation.interval_availability_moments: requires t > 0";
  let model = occupation_model g ~initial ~states in
  let result = Randomization.moments ?eps model ~t ~order in
  Array.init (order + 1) (fun n ->
      Vec.dot initial result.Randomization.moments.(n)
      /. (t ** float_of_int n))

let availability_bounds ?(moment_count = 16) g ~initial ~states ~t points =
  let moments =
    interval_availability_moments g ~initial ~states ~t ~order:moment_count
  in
  let bounds = Moment_bounds.prepare moments in
  Array.map (Moment_bounds.cdf_bounds bounds) points
