(** Upper and lower bounds on a distribution function from a finite set of
    raw moments — the method behind Figures 5–7 of the paper (its ref.
    [12], Rácz–Tari–Telek).

    Implementation: the classical Chebyshev–Markov–Stieltjes inequalities
    realized through orthogonal-polynomial machinery (Golub–Meurant):

    + moments -> three-term recurrence (Jacobi matrix) via Hankel
      Cholesky, with adaptive order reduction when binary64 runs out of
      positive-definiteness;
    + for each evaluation point [x], a Gauss–Radau modification pins a
      quadrature node at [x];
    + nodes/weights from the symmetric tridiagonal eigensolver
      (Golub–Welsch);
    + [sum of weights strictly below x <= F(x-) <= F(x) <= same + weight
      at x].

    The distribution is scaled to O(1) support before the Hankel step —
    CDF bounds are scale-invariant, the conditioning is not. *)

type t
(** Prepared bound evaluator for one moment sequence. *)

type bound = { point : float; lower : float; upper : float }

val prepare : float array -> t
(** [prepare moments] with [moments.(k) = E[X^k]] and [moments.(0) = 1].
    Requires at least 3 moments (m_0, m_1, m_2).
    @raise Invalid_argument on too few/non-finite moments or when even
    the 1-point Hankel problem is not positive definite (inconsistent
    moments). *)

val moments_used : t -> int
(** How many moments survived the positive-definiteness reduction (an odd
    number [2n+2 <= length moments] may be reported as the count actually
    consumed). *)

val quadrature_size : t -> int
(** Number of interior Gauss nodes [n] in use. *)

val cdf_bounds : t -> float -> bound
(** Bounds on [F(x)]. Results are clamped to [0, 1]. *)

val cdf_bounds_grid : t -> float array -> bound array

val gauss_quadrature : t -> (float array * float array)
(** The plain [n]-point Gauss rule (nodes, weights) of the underlying
    measure; exposed for testing (it integrates polynomials of degree
    [2n-1] exactly against the moment sequence). *)

val radau_quadrature : t -> float -> (float array * float array)
(** [radau_quadrature t x] is the Gauss–Radau rule (nodes, weights) with
    one node prescribed at [x] — the rule whose partial sums realize the
    Chebyshev–Markov–Stieltjes bounds that {!cdf_bounds} reports. All
    nodes are finite, including when [x] sits exactly on a Gauss node of
    the measure: the underlying shift solve detects the singular
    elimination there and retries with [x] perturbed by a relative
    epsilon (far below the node tolerance of {!cdf_bounds}), instead of
    masking the zero pivot and overflowing. Weights sum to [m_0].
    Exposed for testing.
    @raise Invalid_argument when the Jacobi data is so degenerate that no
    nearby perturbation yields a solvable system. *)

val quantile_bounds : t -> float -> float * float
(** [quantile_bounds t p] returns [(lo, hi)] such that every distribution
    with the given moments has its [p]-quantile inside [[lo, hi]]:
    [lo = inf (x : upper-bound(x) >= p)] and
    [hi = sup (x : lower-bound(x) <= p)], found by bisection.

    When [p] lies outside the range certifiable inside the bracketed
    Gauss support — e.g. [p] smaller than the Christoffel atom mass at
    the far bracket edge, where the bound predicate never flips — the
    affected side is clamped to [neg_infinity] (respectively
    [infinity]) rather than silently reporting the arbitrary bracket
    endpoint as if it were certified.
    @raise Invalid_argument unless [0 < p < 1]. *)
