module Transient = Mrm_ctmc.Transient
module Vec = Mrm_linalg.Vec

let check_first_order m =
  if not (Model.is_first_order m) then
    invalid_arg
      "First_order: model has non-zero variances; use Randomization directly"

let moments ?eps m ~t ~order =
  check_first_order m;
  Randomization.moments ?eps m ~t ~order

let moment ?eps m ~t ~order =
  check_first_order m;
  Randomization.moment ?eps m ~t ~order

let mean ?eps m ~t = moment ?eps m ~t ~order:1

(* Simpson's rule over the expected instantaneous reward rate. Valid for
   any variance (the mean is variance-independent), so no first-order
   check here. *)
let expected_reward_integral ?eps m ~t ~steps =
  if steps <= 0 then
    invalid_arg "First_order.expected_reward_integral: steps > 0";
  let steps = if steps mod 2 = 1 then steps + 1 else steps in
  let g = m.Model.generator and pi = m.Model.initial in
  let rates = m.Model.rates in
  let h = t /. float_of_int steps in
  let rate_at u =
    let eps = Option.map (fun e -> e /. 10.) eps in
    Vec.dot (Transient.probabilities ?eps g ~initial:pi ~t:u) rates
  in
  let acc = ref (rate_at 0. +. rate_at t) in
  for k = 1 to steps - 1 do
    let w = if k mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. rate_at (float_of_int k *. h))
  done;
  !acc *. h /. 3.
