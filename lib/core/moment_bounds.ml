module Tridiag = Mrm_linalg.Tridiag
module Trace = Mrm_obs.Trace
module Metrics = Mrm_obs.Metrics

let m_prepares = Metrics.counter "bounds.prepare"
let m_orders_rejected = Metrics.counter "bounds.orders_rejected"
let m_hankel_order = Metrics.gauge "bounds.hankel_order"

type bound = { point : float; lower : float; upper : float }

type t = {
  scale : float;  (** support scaling applied before conditioning *)
  total_mass : float;  (** m_0 *)
  alpha : float array;  (** Jacobi diagonal, length n *)
  beta : float array;  (** Jacobi off-diagonal beta_1..beta_n, length n *)
  moments_used : int;
}

let moments_used t = t.moments_used
let quadrature_size t = Array.length t.alpha

(* Cholesky H = R^T R of the (n+1)x(n+1) Hankel moment matrix; returns the
   upper factor, or None when positive-definiteness fails at this order. *)
let hankel_cholesky moments n =
  let size = n + 1 in
  let r = Array.make_matrix size size 0. in
  let ok = ref true in
  (try
     for i = 0 to size - 1 do
       for j = i to size - 1 do
         let acc = ref moments.(i + j) in
         for k = 0 to i - 1 do
           acc := !acc -. (r.(k).(i) *. r.(k).(j))
         done;
         if Int.equal i j then begin
           (* Require a pivot with margin: losing ~14 digits in the Hankel
              products means anything at round-off scale is noise. *)
           if !acc <= 1e-13 *. abs_float moments.(0) || not (Float.is_finite !acc)
           then begin
             ok := false;
             raise Exit
           end;
           r.(i).(i) <- sqrt !acc
         end
         else r.(i).(j) <- !acc /. r.(i).(i)
       done
     done
   with Exit -> ());
  if !ok then Some r else None

(* Jacobi coefficients from the Cholesky factor (Golub–Meurant):
   alpha_j = r_{j,j+1}/r_{j,j} - r_{j-1,j}/r_{j-1,j-1},
   beta_j  = r_{j,j}/r_{j-1,j-1}. *)
let jacobi_from_cholesky r n =
  let alpha = Array.make n 0. and beta = Array.make n 0. in
  for j = 0 to n - 1 do
    let current = r.(j).(j + 1) /. r.(j).(j) in
    let previous = if j = 0 then 0. else r.(j - 1).(j) /. r.(j - 1).(j - 1) in
    alpha.(j) <- current -. previous
  done;
  for j = 1 to n do
    beta.(j - 1) <- r.(j).(j) /. r.(j - 1).(j - 1)
  done;
  (alpha, beta)

let prepare moments =
  Trace.with_span "bounds.prepare"
    ~attrs:[ ("moments", Trace.Int (Array.length moments)) ]
  @@ fun () ->
  Metrics.incr m_prepares;
  let count = Array.length moments in
  if count < 3 then
    invalid_arg "Moment_bounds.prepare: need at least moments m0, m1, m2";
  Array.iteri
    (fun k m ->
      if not (Float.is_finite m) then
        invalid_arg
          (Printf.sprintf "Moment_bounds.prepare: moment %d is not finite" k))
    moments;
  if moments.(0) <= 0. then
    invalid_arg "Moment_bounds.prepare: m0 must be positive";
  (* Scale the support to O(1): CDF bounds are invariant, conditioning is
     not. *)
  let scale =
    let worst = ref 1e-30 in
    for k = 1 to count - 1 do
      let magnitude =
        (abs_float moments.(k) /. moments.(0)) ** (1. /. float_of_int k)
      in
      worst := Float.max !worst magnitude
    done;
    !worst
  in
  let scaled =
    Array.mapi (fun k m -> m /. (scale ** float_of_int k)) moments
  in
  (* Largest n with m_0..m_{2n} available and H_{n+1} positive definite. *)
  let n_max = (count - 1) / 2 in
  let rec fit n =
    if n < 1 then
      invalid_arg
        "Moment_bounds.prepare: moment sequence is not positive definite"
    else begin
      match hankel_cholesky scaled n with
      | Some r -> (n, r)
      | None -> fit (n - 1)
    end
  in
  let n, r = fit n_max in
  Metrics.set m_hankel_order (float_of_int n);
  Metrics.incr ~by:(n_max - n) m_orders_rejected;
  Trace.add_attr "nodes" (Trace.Int n);
  Trace.add_attr "rejected" (Trace.Int (n_max - n));
  let alpha, beta = jacobi_from_cholesky r n in
  {
    scale;
    total_mass = moments.(0);
    alpha;
    beta;
    moments_used = (2 * n) + 1;
  }

(* Tridiagonal solve (J_n - x I) delta = beta_n^2 e_n by the Thomas
   algorithm. [None] on elimination breakdown — a vanishing (or
   overflowed) pivot means x is an eigenvalue of a leading section of
   J_n, in particular any Gauss node. Masking such a pivot with a tiny
   constant (the previous behaviour) silently overflows the solution to
   inf and feeds a non-finite alpha_hat to the eigensolver; the caller
   perturbs x by a relative epsilon and retries instead. *)
exception Breakdown

let radau_shift t x =
  let n = Array.length t.alpha in
  let beta_border = t.beta.(n - 1) in
  let checked pivot =
    if pivot = 0. || not (Float.is_finite pivot) then raise Breakdown
    else pivot
  in
  match
    if n = 1 then
      (* (alpha_0 - x) delta = beta_1^2 *)
      x +. (beta_border *. beta_border /. checked (t.alpha.(0) -. x))
    else begin
      let diag = Array.init n (fun i -> t.alpha.(i) -. x) in
      let off = Array.sub t.beta 0 (n - 1) in
      let rhs = Array.make n 0. in
      rhs.(n - 1) <- beta_border *. beta_border;
      (* Forward elimination. *)
      let c' = Array.make (n - 1) 0. in
      let d' = Array.make n 0. in
      let pivot0 = checked diag.(0) in
      c'.(0) <- off.(0) /. pivot0;
      d'.(0) <- rhs.(0) /. pivot0;
      for i = 1 to n - 1 do
        let pivot = checked (diag.(i) -. (off.(i - 1) *. c'.(i - 1))) in
        if i < n - 1 then c'.(i) <- off.(i) /. pivot;
        d'.(i) <- (rhs.(i) -. (off.(i - 1) *. d'.(i - 1))) /. pivot
      done;
      (* Only the last component of delta is needed: back substitution
         ends at index n-1 immediately. *)
      x +. d'.(n - 1)
    end
  with
  | alpha_hat when Float.is_finite alpha_hat -> Some alpha_hat
  | _ -> None
  | exception Breakdown -> None

(* Prescribing a node exactly at (or binary64-close to) a Gauss node
   makes the shift solve singular; nudge the prescribed point by a
   relative epsilon, doubling until the elimination survives. The
   displacement stays far below the node_tolerance that cdf_bounds uses
   to classify nodes, so bounds are unaffected. *)
let radau_shift_perturbed t x =
  match radau_shift t x with
  | Some alpha_hat -> (x, alpha_hat)
  | None ->
      let rec retry step attempt =
        if attempt > 60 then
          invalid_arg "Moment_bounds.radau_rule: shift solve keeps breaking \
                       down (degenerate Jacobi data)"
        else begin
          match radau_shift t (x +. step) with
          | Some alpha_hat -> (x +. step, alpha_hat)
          | None -> (
              match radau_shift t (x -. step) with
              | Some alpha_hat -> (x -. step, alpha_hat)
              | None -> retry (2. *. step) (attempt + 1))
        end
      in
      retry (1e-14 *. (1. +. abs_float x)) 0

let radau_rule t x =
  let _, alpha_hat = radau_shift_perturbed t x in
  let diag = Array.append t.alpha [| alpha_hat |] in
  let offdiag = Array.copy t.beta in
  let { Tridiag.eigenvalues; first_components } =
    Tridiag.eigen ~diag ~offdiag
  in
  let weights =
    Array.map (fun c -> t.total_mass *. c *. c) first_components
  in
  (eigenvalues, weights)

let radau_quadrature t point =
  let nodes, weights = radau_rule t (point /. t.scale) in
  (Array.map (fun v -> v *. t.scale) nodes, weights)

let cdf_bounds t point =
  let x = point /. t.scale in
  let nodes, weights = radau_rule t x in
  let node_tolerance = 1e-7 *. (1. +. abs_float x) in
  let below = ref 0. and at = ref 0. in
  Array.iteri
    (fun i node ->
      if node < x -. node_tolerance then below := !below +. weights.(i)
      else if node <= x +. node_tolerance then at := !at +. weights.(i))
    nodes;
  let clamp v = Float.max 0. (Float.min t.total_mass v) /. t.total_mass in
  { point; lower = clamp !below; upper = clamp (!below +. !at) }

let cdf_bounds_grid t points = Array.map (cdf_bounds t) points

let quantile_bounds t p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Moment_bounds.quantile_bounds: requires 0 < p < 1";
  (* Bracket from the Gauss support, padded by the measure's scale: all
     mass of any matching distribution has CMS bounds that are 0 left of
     the bracket and 1 right of it. *)
  let n = Array.length t.alpha in
  let diag = Array.copy t.alpha in
  let offdiag = Array.sub t.beta 0 (max 0 (n - 1)) in
  let { Tridiag.eigenvalues; _ } = Tridiag.eigen ~diag ~offdiag in
  let node_min = eigenvalues.(0) *. t.scale in
  let node_max = eigenvalues.(n - 1) *. t.scale in
  let pad = (10. *. (node_max -. node_min)) +. (10. *. t.scale) +. 1. in
  let lo_bracket = node_min -. pad and hi_bracket = node_max +. pad in
  (* upper-bound(x) is nondecreasing in x; find the smallest x with
     upper(x) >= p. The bisection only means anything when the predicate
     actually flips inside the bracket: the Radau upper bound carries a
     Christoffel atom at the evaluation point itself, so for extreme p
     (below the atom's mass even at lo_bracket) the predicate is true on
     the whole bracket and the loop would silently converge to the
     padded endpoint — an uncertified value. Check the endpoints first
     and return the documented infinite clamps instead. *)
  let bisect predicate =
    if predicate lo_bracket then neg_infinity
    else if not (predicate hi_bracket) then infinity
    else begin
      let lo = ref lo_bracket and hi = ref hi_bracket in
      for _ = 1 to 80 do
        let mid = 0.5 *. (!lo +. !hi) in
        if predicate mid then hi := mid else lo := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  in
  let lower_quantile = bisect (fun x -> (cdf_bounds t x).upper >= p) in
  let upper_quantile = bisect (fun x -> (cdf_bounds t x).lower > p) in
  (lower_quantile, upper_quantile)

let gauss_quadrature t =
  let n = Array.length t.alpha in
  let diag = Array.copy t.alpha in
  let offdiag = Array.sub t.beta 0 (max 0 (n - 1)) in
  let { Tridiag.eigenvalues; first_components } =
    Tridiag.eigen ~diag ~offdiag
  in
  let nodes = Array.map (fun v -> v *. t.scale) eigenvalues in
  let weights =
    Array.map (fun c -> t.total_mass *. c *. c) first_components
  in
  (nodes, weights)
