(** Randomization (uniformization) solver for the moments of accumulated
    reward in a second-order MRM — the paper's main algorithm
    (Theorems 3 and 4, Appendix B).

    The computation multiplies only non-negative substochastic matrices
    with non-negative vectors, so it is subtraction-free and numerically
    stable, and the truncation point [G] comes with the a-priori error
    bound of Theorem 4. Cost: [G] sparse matrix–vector products per moment
    order, with [G = O(qt)]. *)

type diagnostics = {
  q : float;  (** uniformization rate [max_i |q_ii|] *)
  d : float;  (** reward scaling constant (see note below) *)
  shift : float;
      (** drift shift applied to make all rates non-negative (0 when they
          already are) *)
  iterations : int;  (** the truncation point [G] of Theorem 4 *)
  eps : float;  (** requested precision *)
  log_error_bound : float;
      (** natural log of the guaranteed element-wise truncation error of
          the shifted model's highest-order moment vector *)
}

type result = {
  moments : float array array;
      (** [moments.(n).(i) = V_i^(n)(t) = E[B(t)^n | Z(0) = i]] for
          [n = 0 .. order] *)
  diagnostics : diagnostics;
}

val moments :
  ?validate:bool -> ?eps:float -> ?pool:Mrm_engine.Pool.t -> Model.t ->
  t:float -> order:int -> result
(** All per-state raw moments of [B(t)] up to [order].

    [validate] (default [false]) runs the full static-analysis pass of
    {!Mrm_check.Check} on the model and this solve's configuration
    before touching the solver, raising {!Mrm_check.Check.Failed} (whose
    printer lists the violated [MRM] codes) on any error-severity
    finding. Models built through {!Model.make} are structurally valid
    by construction; the flag additionally guards against post-hoc array
    mutation and flags conditioning hazards of the configuration itself.

    [eps] (default 1e-9, the paper's setting for the large example) bounds
    the truncation error of each element of the highest-order shifted
    moment vector.

    [pool] runs the per-step recursion
    [U^(n)(k+1) = R' U^(n-1)(k) + (1/2) S' U^(n-2)(k) + Q' U^(n)(k)]
    row-partitioned across the pool's domains (partition balanced by the
    nnz of the uniformized generator, see {!Mrm_engine.Partition}).
    Bit-for-bit identical to the sequential result — ranges write
    disjoint row slices and each row's dot product keeps its summation
    order. Omitted (or with a 1-job pool) the original sequential loops
    run untouched.

    Note on [d]: the paper prescribes [d = max_i {r_i, sigma_i} / q], but
    that choice leaves [S' = S/(q d^2)] super-stochastic whenever [q > 1],
    invalidating the Lemma-2 bound behind Theorem 4. The computed moments
    are invariant to [d] (it cancels from eq. (9)/(10)), so this
    implementation uses the minimal [d] making both [R'] and [S']
    substochastic: [d = max(max_i r_i / q, max_i sigma_i / sqrt q)]
    (after the non-negativity shift). Only [G] is (slightly) affected.

    [t = 0.] short-circuits to the exact answer — moment 0 is the ones
    vector, every higher moment is the zero vector — without touching
    the truncation-point machinery (whose tail bound would need
    [log lambda] with [lambda = qt = 0]).

    @raise Invalid_argument if [t] is NaN, infinite or negative, if
    [order < 0], or unless [eps > 0]. The NaN/infinity rejection is
    deliberate: [t < 0.] alone would let non-finite horizons through
    (every NaN comparison is false) and silently poison the solve. *)

val moment : ?eps:float -> Model.t -> t:float -> order:int -> float
(** [pi . V^(order)(t)] — the unconditional raw moment. *)

val moment_series :
  ?validate:bool -> ?eps:float -> ?pool:Mrm_engine.Pool.t -> Model.t ->
  times:float array -> order:int -> (float * float array) array
(** For each [t] in [times]: [(t, [| m_0; ...; m_order |])] unconditional
    raw moments — a thin projection of {!moments_at_times}, so the whole
    ramp is computed in one shared randomization sweep ([max_j G(t_j)]
    iterations, not [sum_j G(t_j)]). [validate] and [pool] as in
    {!moments}. *)

val moments_at_times :
  ?validate:bool -> ?eps:float -> ?pool:Mrm_engine.Pool.t -> Model.t ->
  times:float array -> order:int -> result array
(** Same results as calling {!moments} per time point, but in a single
    randomization sweep: the [U^(n)(k)] recursion does not depend on [t]
    (only the Poisson weights do), so one pass to
    [G = max_j G(t_j)] serves every time point. For a ramp of [m] times
    this costs [max G] iterations instead of [sum G] — e.g. the five
    Figure-8 time points for the price of the last one. Results match the
    pointwise solver to within the [eps] bounds (asserted in the tests). *)

val mean : ?eps:float -> Model.t -> t:float -> float
val variance : ?eps:float -> Model.t -> t:float -> float
(** Central second moment [E B^2 - (E B)^2] of the unconditional reward. *)

val central_moment : ?eps:float -> Model.t -> t:float -> order:int -> float

(**/**)

val truncation_point : d:float -> lambda:float -> order:int -> eps:float -> int
(** Internal: the Theorem-4 truncation point [G] with the corrected tail
    index (see randomization.ml), i.e. the smallest [G] with
    [2 d^n n! lambda^n P(Pois(lambda) >= G+1-n) < eps]. [lambda = 0.]
    (a point-mass Poisson) short-circuits to [max 1 order]. Exposed for
    the property-based tests; not part of the stable API.
    @raise Invalid_argument if [lambda] is NaN, infinite or negative. *)

val unshift_moments :
  shift:float -> t:float -> float array array -> float array array
(** Internal: maps moments of the drift-shifted process back through the
    binomial expansion of [(B~ + shift*t)^n]. Exposed for the
    impulse-reward extension ({!Impulse}); not part of the stable API. *)

