module Generator = Mrm_ctmc.Generator
module Dense = Mrm_linalg.Dense
module Lu = Mrm_linalg.Lu
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec
module Special = Mrm_util.Special

let stehfest_coefficients stages =
  if stages < 2 || stages mod 2 = 1 || stages > 20 then
    invalid_arg "Transform_moments: stages must be even, in [2, 20]";
  let half = stages / 2 in
  Array.init stages (fun k_minus_1 ->
      let k = k_minus_1 + 1 in
      let sign = if (k + half) mod 2 = 0 then 1. else -1. in
      let acc = ref 0. in
      for j = (k + 1) / 2 to Int.min k half do
        let jf = float_of_int j in
        acc :=
          !acc
          +. (jf ** float_of_int half)
             *. Special.binomial half j *. Special.binomial (2 * j) j
             *. Special.binomial j (k - j)
             *. jf (* j^half * j = j^(half+1) *)
             /. Special.factorial half
      done;
      sign *. !acc)

(* V*^(n)(s) for all n = 0..order at a single real abscissa s > 0. *)
let transform_moments_at model ~order s =
  let n = Model.dim model in
  let q_dense = Sparse.to_dense (Generator.matrix model.Model.generator) in
  let a =
    Dense.sub (Dense.scale s (Dense.identity n)) q_dense
  in
  let factorization = Lu.factorize a in
  let result = Array.make (order + 1) [||] in
  result.(0) <- Lu.solve factorization (Vec.ones n);
  for j = 1 to order do
    let jf = float_of_int j in
    let rhs =
      Array.init n (fun i ->
          let drift = jf *. model.Model.rates.(i) *. result.(j - 1).(i) in
          let diffusion =
            if j >= 2 then
              0.5 *. jf *. (jf -. 1.) *. model.Model.variances.(i)
              *. result.(j - 2).(i)
            else 0.
          in
          drift +. diffusion)
    in
    result.(j) <- Lu.solve factorization rhs
  done;
  result

let moments ?(stages = 12) model ~t ~order =
  if t <= 0. then invalid_arg "Transform_moments.moments: requires t > 0";
  if order < 0 then invalid_arg "Transform_moments.moments: order >= 0";
  let zeta = stehfest_coefficients stages in
  let n = Model.dim model in
  let log2 = log 2. in
  let out = Array.init (order + 1) (fun _ -> Vec.zeros n) in
  for k = 1 to stages do
    let s = float_of_int k *. log2 /. t in
    let vs = transform_moments_at model ~order s in
    let w = zeta.(k - 1) *. log2 /. t in
    for j = 0 to order do
      Vec.axpy ~alpha:w ~x:vs.(j) ~y:out.(j)
    done
  done;
  out

let moment ?stages model ~t ~order =
  let m = moments ?stages model ~t ~order in
  Vec.dot model.Model.initial m.(order)
