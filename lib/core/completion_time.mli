(** Completion time analysis for first-order models with strictly
    positive rates: the time [T_x] at which the accumulated reward first
    reaches level [x].

    With all [r_i > 0] and [sigma_i = 0], [B(t)] is strictly increasing,
    so [P(B(t) > x) = P(T_x < t)] and the pair [(T_x, Z)] viewed in the
    "reward clock" is itself a first-order MRM: the chain moves with
    generator [R^{-1} Q] (state changes per unit of {e reward}) while
    accumulating {e time} at rate [1/r_i]. This classical duality turns
    every solver in the library into a completion-time solver for free. *)

val dual_model : Model.t -> Model.t
(** The reward-clock dual. @raise Invalid_argument unless the model is
    first-order with all rates strictly positive. *)

val moments : ?eps:float -> Model.t -> x:float -> order:int -> float array
(** Raw moments [E T_x^n] for [n = 0..order] (unconditional, using the
    model's initial distribution), computed by running the randomization
    solver on the dual for "time" [x]. *)

val mean : ?eps:float -> Model.t -> x:float -> float

val cdf : ?eps:float -> Model.t -> x:float -> t:float -> float
(** [P(T_x <= t) = P(B(t) >= x)], evaluated through the duality with the
    Gil-Pelaez distribution solver on the dual model. First-order duals
    carry atoms (the no-jump paths), where Fourier inversion converges
    slowly: expect absolute accuracy around 1e-3 rather than the 1e-6 of
    the smooth second-order case, and the midpoint convention exactly at
    an atom. *)
