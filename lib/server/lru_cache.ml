(* Hashtbl + intrusive doubly-linked recency list, all under one mutex.
   The list head is the most recently used entry, the tail the eviction
   candidate. Nodes are never shared outside the mutex, so the plain
   mutable fields cannot race. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable node_weight : int;
  mutable prev : 'a node option;  (* towards the head (more recent) *)
  mutable next : 'a node option;  (* towards the tail (less recent) *)
}

type stats = { hits : int; misses : int; evictions : int }

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  weight : 'a -> int;
  on_evict : string -> unit;
  max_entries : int;
  max_weight : int;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable current_weight : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_entries = 256) ?(max_weight = 64 * 1024 * 1024)
    ?(on_evict = ignore) ~weight () =
  if max_entries < 1 then
    invalid_arg (Printf.sprintf "Lru_cache.create: max_entries %d" max_entries);
  if max_weight < 1 then
    invalid_arg (Printf.sprintf "Lru_cache.create: max_weight %d" max_weight);
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    weight;
    on_evict;
    max_entries;
    max_weight;
    head = None;
    tail = None;
    current_weight = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* List surgery; caller holds the mutex. *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if Option.is_none t.tail then t.tail <- Some node

let promote t node =
  unlink t node;
  push_front t node

let evict_one t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.current_weight <- t.current_weight - node.node_weight;
      t.evictions <- t.evictions + 1;
      t.on_evict node.key

let enforce_caps t =
  while
    Hashtbl.length t.table > t.max_entries
    || (t.current_weight > t.max_weight && Option.is_some t.tail)
  do
    evict_one t
  done

let find_opt t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some node ->
      promote t node;
      t.hits <- t.hits + 1;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = locked t @@ fun () -> Hashtbl.mem t.table key

let add t key value =
  locked t @@ fun () ->
  let w = t.weight value in
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.current_weight <- t.current_weight - node.node_weight + w;
      node.value <- value;
      node.node_weight <- w;
      promote t node;
      enforce_caps t
  | None ->
      if w <= t.max_weight then begin
        let node =
          { key; value; node_weight = w; prev = None; next = None }
        in
        Hashtbl.add t.table key node;
        t.current_weight <- t.current_weight + w;
        push_front t node;
        enforce_caps t
      end

let length t = locked t @@ fun () -> Hashtbl.length t.table
let total_weight t = locked t @@ fun () -> t.current_weight

let stats t =
  locked t @@ fun () ->
  { hits = t.hits; misses = t.misses; evictions = t.evictions }

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.current_weight <- 0
