type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;  (* an element arrived, or the queue closed *)
  items : 'a Queue.t;
  cap : int;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Rqueue.create: capacity %d" capacity);
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    items = Queue.create ();
    cap = capacity;
    is_closed = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t x =
  locked t @@ fun () ->
  if t.is_closed then `Closed
  else if Queue.length t.items >= t.cap then `Full
  else begin
    Queue.add x t.items;
    Condition.signal t.not_empty;
    `Ok
  end

let pop t =
  locked t @@ fun () ->
  let rec wait () =
    match Queue.take_opt t.items with
    | Some x -> Some x
    | None ->
        if t.is_closed then None
        else begin
          Condition.wait t.not_empty t.mutex;
          wait ()
        end
  in
  wait ()

let close t =
  locked t @@ fun () ->
  if not t.is_closed then begin
    t.is_closed <- true;
    Condition.broadcast t.not_empty
  end

let closed t = locked t @@ fun () -> t.is_closed
let length t = locked t @@ fun () -> Queue.length t.items
let capacity t = t.cap
