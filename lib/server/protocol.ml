module Json = Mrm_util.Json
module Batch = Mrm_batch.Batch
module Check = Mrm_check.Check
module Diagnostics = Mrm_check.Diagnostics
module Generator = Mrm_ctmc.Generator
module Model = Mrm_core.Model

type request = { job : Batch.job; digest : string; expires : float option }

let error_table =
  [
    ("SRV001", "malformed request line (bad JSON or bad job spec)");
    ("SRV002", "request queue full — retry later (backpressure)");
    ("SRV003", "deadline exceeded before the solve started");
    ("SRV004", "server is draining and no longer accepts requests");
    ("SRV005", "model failed server-side validation (see diagnostics)");
    ("SRV006", "no healthy replica available (cluster router)");
  ]

let deadline_of_json json =
  match Json.member "deadline_s" json with
  | None -> Ok None
  | Some v -> (
      match Json.to_float v with
      | Some s when s > 0. && Float.is_finite s -> Ok (Some s)
      | _ -> Error "field \"deadline_s\": expected a positive number")

let parse_request ?default_eps ~now ~default_id line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> (
      match deadline_of_json json with
      | Error e -> Error e
      | Ok deadline -> (
          match Batch.job_of_json ~default_id ?default_eps json with
          (* Model builders reject out-of-domain specs (negative
             variance, bad dimensions) by raising — at the service
             boundary that is a malformed request, not a dead handler
             thread. *)
          | exception Invalid_argument msg -> Error msg
          | Error e -> Error e
          | Ok job ->
              Ok
                {
                  job;
                  digest = Batch.digest job;
                  expires = Option.map (fun s -> now +. s) deadline;
                }))

let validate (job : Batch.job) =
  let model = job.Batch.model in
  let data =
    Check.data
      ~q_matrix:(Generator.matrix model.Model.generator)
      ~rates:model.Model.rates ~variances:model.Model.variances
      ~initial:model.Model.initial
  in
  let t =
    if Array.length job.Batch.times = 0 then 1. else job.Batch.times.(0)
  in
  let config =
    {
      Check.default_config with
      Check.t;
      order = job.Batch.order;
      eps = job.Batch.eps;
    }
  in
  Diagnostics.errors (Check.check ~config data)

(* ------------------------------------------------------------------ *)
(* Responses *)

let response_of_outcome ~cached outcome =
  let json =
    match Batch.outcome_to_json outcome with
    | Json.Obj fields -> Json.Obj (fields @ [ ("cached", Json.Bool cached) ])
    | other -> other
  in
  Json.to_string json

let error_response ~id ~code ?diagnostics message =
  let diagnostics_field =
    match diagnostics with
    | None | Some [] -> []
    | Some report ->
        (* Diagnostics renders its own JSON; round-trip through the
           parser to embed it as a subtree of the response object. *)
        [ ("diagnostics",
           Json.parse_exn (Diagnostics.report_to_json report)) ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("id", Json.Str id);
          ("status", Json.Str "error");
          ("code", Json.Str code);
          ("error", Json.Str message);
        ]
       @ diagnostics_field))

let response_status json =
  Option.bind (Json.member "status" json) Json.to_str

let response_cached json =
  match Option.bind (Json.member "cached" json) Json.to_bool with
  | Some b -> b
  | None -> false
