(** Thread-safe LRU cache for the solver service.

    Entries are keyed by string (the server uses
    {!Mrm_batch.Batch.digest} hex keys) and bounded two ways: a maximum
    entry count and a maximum total weight (the caller supplies a
    per-value weight function — the server estimates the byte footprint
    of a solved outcome). When either cap is exceeded the
    least-recently-used entries are evicted until both hold again.

    All operations take an internal mutex, so connection handlers and
    solver workers (threads or domains) may share one cache. Eviction,
    hit and miss counts are reported through {!stats}; the server mirrors
    them into {!Mrm_obs.Metrics} ([server.cache_*]). *)

type 'a t

val create :
  ?max_entries:int -> ?max_weight:int -> ?on_evict:(string -> unit) ->
  weight:('a -> int) -> unit -> 'a t
(** [max_entries] defaults to 256, [max_weight] to 64 MiB worth of
    weight units. A value whose own weight exceeds [max_weight] is never
    stored. [on_evict] is called with the evicted key while the internal
    lock is held (the server mirrors evictions into
    {!Mrm_obs.Metrics}) — it must not call back into the cache.
    @raise Invalid_argument when a cap is [< 1]. *)

val find_opt : 'a t -> string -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used and is
    counted in {!stats}. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or replace — replacement also promotes), then evict
    LRU-first until both caps hold. *)

val mem : 'a t -> string -> bool
(** Like {!find_opt} but with no promotion and no hit/miss accounting. *)

val length : 'a t -> int

val total_weight : 'a t -> int
(** Sum of the stored values' weights. *)

type stats = { hits : int; misses : int; evictions : int }

val stats : 'a t -> stats

val clear : 'a t -> unit
(** Drop every entry. Counted neither as eviction nor as miss. *)
