module Batch = Mrm_batch.Batch
module Pool = Mrm_engine.Pool
module Metrics = Mrm_obs.Metrics
module Trace = Mrm_obs.Trace
module Diagnostics = Mrm_check.Diagnostics

type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  endpoint : endpoint;
  queue_capacity : int;
  cache_entries : int;
  cache_bytes : int;
  workers : int;
  pool_jobs : int;
  default_eps : float;
  validate : bool;
}

let default_config endpoint =
  {
    endpoint;
    queue_capacity = 64;
    cache_entries = 256;
    cache_bytes = 64 * 1024 * 1024;
    workers = 1;
    pool_jobs = 1;
    default_eps = 1e-9;
    validate = true;
  }

(* ------------------------------------------------------------------ *)
(* Metrics *)

let m_connections = Metrics.counter "server.connections"
let m_requests = Metrics.counter "server.requests"
let m_parse_errors = Metrics.counter "server.parse_errors"
let m_validation_failures = Metrics.counter "server.validation_failures"
let m_rejected = Metrics.counter "server.rejected"
let m_timeouts = Metrics.counter "server.timeouts"
let m_cache_hits = Metrics.counter "server.cache_hits"
let m_cache_misses = Metrics.counter "server.cache_misses"
let m_cache_evictions = Metrics.counter "server.cache_evictions"
let m_drains = Metrics.counter "server.drains"
let g_queue_peak = Metrics.gauge "server.queue_peak"
let g_cache_entries = Metrics.gauge "server.cache_entries"

(* ------------------------------------------------------------------ *)
(* Requests in flight: a reply cell each handler blocks on *)

type reply = {
  rmutex : Mutex.t;
  rcond : Condition.t;
  mutable answer : string option;
}

type work = { request : Protocol.request; reply : reply }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let resolve reply response =
  with_lock reply.rmutex @@ fun () ->
  reply.answer <- Some response;
  Condition.signal reply.rcond

let await reply =
  with_lock reply.rmutex @@ fun () ->
  while Option.is_none reply.answer do
    Condition.wait reply.rcond reply.rmutex
  done;
  Option.get reply.answer

(* ------------------------------------------------------------------ *)
(* Handle *)

type conn = { conn_id : int; fd : Unix.file_descr }

type handle = {
  cfg : config;
  listen_fd : Unix.file_descr;
  listen_addr : Unix.sockaddr;
  wake_r : Unix.file_descr;  (* self-pipe: drain wakes the acceptor *)
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  queue : work Rqueue.t;
  cache : Batch.outcome Lru_cache.t;
  pool : Pool.t option;
  registry : (int, conn) Hashtbl.t;  (* open connections, under reg_mutex *)
  reg_mutex : Mutex.t;
  handler_done : Condition.t;  (* a handler thread exited *)
  mutable active_handlers : int;  (* under reg_mutex *)
  mutable next_conn_id : int;  (* under reg_mutex *)
  mutable acceptor : Thread.t option;
  mutable worker_threads : Thread.t list;
}

let listen_address h = h.listen_addr

(* Approximate heap footprint of a cached outcome, for the byte cap. *)
let outcome_weight (o : Batch.outcome) =
  let base = 96 + String.length o.Batch.id + String.length o.Batch.digest in
  match o.Batch.result with
  | Error message -> base + String.length message
  | Ok (Batch.Points points) ->
      Array.fold_left
        (fun acc (p : Batch.point) -> acc + 48 + (8 * Array.length p.Batch.values))
        base points
  | Ok (Batch.Density d) ->
      base + 96
      + (8 * Array.length d.Batch.marginal)
      + List.fold_left
          (fun acc w -> acc + String.length w)
          0 d.Batch.stationary_warnings

(* ------------------------------------------------------------------ *)
(* Request processing *)

(* Runs on a solver worker thread; everything here is sequential per
   worker, so the per-request span nests correctly (workers = 1) or at
   worst interleaves emission (workers > 1). *)
let serve_request h (request : Protocol.request) =
  let job = request.Protocol.job in
  let id = job.Batch.id in
  Trace.with_span "server.request"
    ~attrs:
      [ ("id", Trace.Str id); ("digest", Trace.Str request.Protocol.digest) ]
  @@ fun () ->
  let expired =
    match request.Protocol.expires with
    | Some e -> Unix.gettimeofday () > e
    | None -> false
  in
  if expired then begin
    Metrics.incr m_timeouts;
    Trace.add_attr "outcome" (Trace.Str "timeout");
    Protocol.error_response ~id ~code:"SRV003"
      "deadline exceeded before the solve started"
  end
  else
    match Lru_cache.find_opt h.cache request.Protocol.digest with
    | Some stored ->
        Metrics.incr m_cache_hits;
        Trace.add_attr "cached" (Trace.Bool true);
        (* Bit-for-bit the stored outcome — only the id is the caller's. *)
        Protocol.response_of_outcome ~cached:true { stored with Batch.id = id }
    | None ->
        Metrics.incr m_cache_misses;
        Trace.add_attr "cached" (Trace.Bool false);
        let outcome = (Batch.run ?pool:h.pool [| job |]).(0) in
        (match outcome.Batch.result with
        | Ok _ ->
            Lru_cache.add h.cache request.Protocol.digest outcome;
            Metrics.set g_cache_entries
              (float_of_int (Lru_cache.length h.cache))
        | Error _ -> ());
        Protocol.response_of_outcome ~cached:false outcome

let worker_loop h =
  let rec loop () =
    match Rqueue.pop h.queue with
    | None -> ()
    | Some { request; reply } ->
        resolve reply (serve_request h request);
        loop ()
  in
  loop ()

(* Runs on the connection-handler thread: parse, validate, enqueue,
   block until the worker resolves the reply. *)
let process h ~lineno line =
  Metrics.incr m_requests;
  let now = Unix.gettimeofday () in
  let default_id = Printf.sprintf "req-%d" lineno in
  match
    Protocol.parse_request ~default_eps:h.cfg.default_eps ~now ~default_id
      line
  with
  | Error msg ->
      Metrics.incr m_parse_errors;
      Protocol.error_response ~id:default_id ~code:"SRV001" msg
  | Ok request -> begin
      let id = request.Protocol.job.Batch.id in
      match
        if h.cfg.validate then Protocol.validate request.Protocol.job else []
      with
      | _ :: _ as report ->
          Metrics.incr m_validation_failures;
          Protocol.error_response ~id ~code:"SRV005" ~diagnostics:report
            (Printf.sprintf "model failed validation: %s"
               (String.concat ", " (Diagnostics.codes report)))
      | [] -> begin
          let reply =
            { rmutex = Mutex.create (); rcond = Condition.create ();
              answer = None }
          in
          match Rqueue.push h.queue { request; reply } with
          | `Full ->
              Metrics.incr m_rejected;
              Protocol.error_response ~id ~code:"SRV002"
                (Printf.sprintf
                   "request queue full (capacity %d) — retry later"
                   (Rqueue.capacity h.queue))
          | `Closed ->
              Protocol.error_response ~id ~code:"SRV004"
                "server is draining and no longer accepts requests"
          | `Ok ->
              Metrics.observe_max g_queue_peak
                (float_of_int (Rqueue.length h.queue));
              await reply
        end
    end

(* ------------------------------------------------------------------ *)
(* Connections *)

let unregister h conn =
  (with_lock h.reg_mutex @@ fun () ->
   Hashtbl.remove h.registry conn.conn_id;
   h.active_handlers <- h.active_handlers - 1;
   Condition.broadcast h.handler_done);
  (* Off the registry: drain can no longer race this close. *)
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let handle_connection h conn =
  (* Raw-descriptor line I/O via [Wire]: EINTR from the systhreads tick
     signal is retried instead of surfacing as a bogus disconnect (the
     buffered-channel predecessor dropped the client on it). A drain's
     half-close ([SHUTDOWN_RECEIVE]) makes the blocked read return 0,
     i.e. [Wire.Closed]. *)
  let wire = Wire.of_fd conn.fd in
  let lineno = ref 0 in
  let rec loop () =
    match Wire.read_line wire with
    | exception (Wire.Closed | Wire.Timeout) -> ()
    | exception Unix.Unix_error _ -> ()
    | line ->
        incr lineno;
        if String.trim line = "" then loop ()
        else begin
          let response = process h ~lineno:!lineno (String.trim line) in
          match Wire.write_line wire response with
          | () -> if Atomic.get h.stop then () else loop ()
          | exception (Wire.Closed | Wire.Timeout) -> ()
          | exception Unix.Unix_error _ -> ()
        end
  in
  Fun.protect ~finally:(fun () -> unregister h conn) loop

let spawn_connection h fd =
  Metrics.incr m_connections;
  let conn =
    with_lock h.reg_mutex @@ fun () ->
    let conn = { conn_id = h.next_conn_id; fd } in
    h.next_conn_id <- h.next_conn_id + 1;
    h.active_handlers <- h.active_handlers + 1;
    Hashtbl.replace h.registry conn.conn_id conn;
    conn
  in
  (* A drain that iterated the registry before we registered would miss
     this connection; re-check the stop flag so the handler still sees
     EOF promptly. *)
  if Atomic.get h.stop then begin
    try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
    with Unix.Unix_error _ -> ()
  end;
  ignore (Thread.create (fun () -> handle_connection h conn) ())

let accept_loop h =
  let rec loop () =
    if Atomic.get h.stop then ()
    else begin
      match Unix.select [ h.listen_fd; h.wake_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if Atomic.get h.stop then ()
          else if List.memq h.listen_fd ready then begin
            (match Unix.accept h.listen_fd with
            | fd, _ -> spawn_connection h fd
            | exception Unix.Unix_error _ -> ());
            loop ()
          end
          else loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

(* A Unix socket path left behind by a crashed instance must be
   unlinked before bind — but only after proving it is stale. A connect
   probe decides: a live listener accepts (refuse to clobber a running
   server: EADDRINUSE, exactly what bind would have said), a leftover
   from a dead process refuses the connection. A path that is not a
   socket at all is never touched. *)
let remove_stale_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | stats when stats.Unix.st_kind <> Unix.S_SOCK ->
      raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
  | _ -> begin
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        Fun.protect
          ~finally:(fun () ->
            try Unix.close probe with Unix.Unix_error _ -> ())
          (fun () ->
            match Unix.connect probe (Unix.ADDR_UNIX path) with
            | () -> `Live
            | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
            | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
            | exception Unix.Unix_error _ ->
                (* Can't prove it stale (EACCES, ...): don't clobber. *)
                `Live)
      in
      match verdict with
      | `Gone -> ()
      | `Stale -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | `Live -> raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
    end

let bind_listen endpoint =
  match endpoint with
  | `Unix path ->
      remove_stale_socket path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | `Tcp (host, port) ->
      let addr =
        if host = "" || host = "*" then Unix.inet_addr_any
        else if host = "localhost" then Unix.inet_addr_loopback
        else begin
          match Unix.inet_addr_of_string host with
          | addr -> addr
          | exception Failure _ ->
              (Unix.gethostbyname host).Unix.h_addr_list.(0)
        end
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

(* The cluster router front-end binds its listening socket exactly the
   way the server does (same endpoint forms, same stale-socket rules). *)
let bind_endpoint = bind_listen

let start cfg =
  if cfg.workers < 1 then
    invalid_arg (Printf.sprintf "Server.start: workers %d" cfg.workers);
  let listen_fd = bind_listen cfg.endpoint in
  let wake_r, wake_w = Unix.pipe () in
  let h =
    {
      cfg;
      listen_fd;
      listen_addr = Unix.getsockname listen_fd;
      wake_r;
      wake_w;
      stop = Atomic.make false;
      queue = Rqueue.create ~capacity:cfg.queue_capacity;
      cache =
        Lru_cache.create ~max_entries:cfg.cache_entries
          ~max_weight:cfg.cache_bytes
          ~on_evict:(fun _key -> Metrics.incr m_cache_evictions)
          ~weight:outcome_weight ();
      pool =
        (if cfg.pool_jobs > 1 then Some (Pool.create ~jobs:cfg.pool_jobs ())
         else None);
      registry = Hashtbl.create 16;
      reg_mutex = Mutex.create ();
      handler_done = Condition.create ();
      active_handlers = 0;
      next_conn_id = 0;
      acceptor = None;
      worker_threads = [];
    }
  in
  h.worker_threads <-
    List.init cfg.workers (fun _ -> Thread.create (fun () -> worker_loop h) ());
  h.acceptor <- Some (Thread.create (fun () -> accept_loop h) ());
  h

let drain h =
  if not (Atomic.exchange h.stop true) then begin
    Metrics.incr m_drains;
    (* Wake the acceptor's select. *)
    (try ignore (Unix.write h.wake_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    (* Half-close every open connection: handlers blocked in input_line
       see EOF and exit; handlers mid-request finish the solve, flush
       the response, then exit on the stop flag. Snapshot the registry
       under the lock, shut down outside it: shutdown is a syscall that
       can fail arbitrarily, and a handler unregistering concurrently
       only makes its fd's shutdown a caught no-op. *)
    let conns =
      with_lock h.reg_mutex @@ fun () ->
      Hashtbl.fold (fun _ conn acc -> conn :: acc) h.registry []
    in
    List.iter
      (fun conn ->
        try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      conns
  end

let wait h =
  (match h.acceptor with Some t -> Thread.join t | None -> ());
  (* Every accepted request is finished before the queue closes. *)
  (with_lock h.reg_mutex @@ fun () ->
   while h.active_handlers > 0 do
     Condition.wait h.handler_done h.reg_mutex
   done);
  Rqueue.close h.queue;
  List.iter Thread.join h.worker_threads;
  (match h.pool with Some pool -> Pool.shutdown pool | None -> ());
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ h.listen_fd; h.wake_r; h.wake_w ];
  match h.cfg.endpoint with
  | `Unix path ->
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | `Tcp _ -> ()

let run ?(on_ready = ignore) cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let signals = [ Sys.sigterm; Sys.sigint ] in
  (* Block the shutdown signals BEFORE spawning any thread (threads
     inherit the mask), then consume them from a dedicated watcher: the
     classic threaded-daemon pattern — no async-signal-unsafe work in a
     signal handler, no thread left with the default disposition, and
     repeated signals stay graceful. *)
  ignore (Thread.sigmask Unix.SIG_BLOCK signals);
  let h = start cfg in
  on_ready h.listen_addr;
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let rec watch () =
          (match Thread.wait_signal signals with
          | _ -> drain h
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          watch ()
        in
        watch ())
      ()
  in
  wait h;
  0
