module Json = Mrm_util.Json

type endpoint = Server.endpoint

exception Disconnected of string

let connect endpoint =
  match (endpoint : endpoint) with
  | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | `Tcp (host, port) ->
      let addr =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else begin
          match Unix.inet_addr_of_string host with
          | addr -> addr
          | exception Failure _ ->
              (Unix.gethostbyname host).Unix.h_addr_list.(0)
        end
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd

type summary = { sent : int; errors : int; cache_hits : int }

let session ~fd ~input ~on_response =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let summary = ref { sent = 0; errors = 0; cache_hits = 0 } in
  let request_id line lineno =
    match Json.parse line with
    | Ok json -> begin
        match Option.bind (Json.member "id" json) Json.to_str with
        | Some id -> id
        | None -> Printf.sprintf "req-%d" lineno
      end
    | Error _ -> Printf.sprintf "req-%d" lineno
  in
  let exchange line lineno =
    let id = request_id line lineno in
    (match
       output_string oc line;
       output_char oc '\n';
       flush oc
     with
    | () -> ()
    | exception Sys_error msg ->
        raise (Disconnected (Printf.sprintf "%s: %s" id msg)));
    match input_line ic with
    | exception End_of_file ->
        raise (Disconnected (Printf.sprintf "%s: connection closed" id))
    | exception Sys_error msg ->
        raise (Disconnected (Printf.sprintf "%s: %s" id msg))
    | response ->
        let s = !summary in
        let is_error, cached =
          match Json.parse response with
          | Error _ -> (true, false)
          | Ok json ->
              ( (match Protocol.response_status json with
                | Some "error" -> true
                | Some _ -> false
                | None -> true),
                Protocol.response_cached json )
        in
        summary :=
          {
            sent = s.sent + 1;
            errors = (s.errors + if is_error then 1 else 0);
            cache_hits = (s.cache_hits + if cached then 1 else 0);
          };
        on_response response
  in
  let lineno = ref 0 in
  let rec loop () =
    match input_line input with
    | exception End_of_file -> ()
    | line ->
        incr lineno;
        let trimmed = String.trim line in
        if trimmed <> "" then exchange trimmed !lineno;
        loop ()
  in
  loop ();
  !summary

let call endpoint ~input ~on_response =
  let fd = connect endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> session ~fd ~input ~on_response)
