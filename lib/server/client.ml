module Json = Mrm_util.Json
module Rng = Mrm_util.Rng

type endpoint = Server.endpoint

exception Disconnected of string

let connect ?(timeout = 0.) endpoint =
  let fd =
    match (endpoint : endpoint) with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
    | `Tcp (host, port) ->
        let addr =
          if host = "" || host = "localhost" then Unix.inet_addr_loopback
          else begin
            match Unix.inet_addr_of_string host with
            | addr -> addr
            | exception Failure _ ->
                (Unix.gethostbyname host).Unix.h_addr_list.(0)
          end
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (addr, port))
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
  in
  if timeout > 0. then begin
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
  end;
  fd

type summary = {
  sent : int;
  errors : int;
  srv_errors : int;
  cache_hits : int;
  retries : int;
}

let empty_summary =
  { sent = 0; errors = 0; srv_errors = 0; cache_hits = 0; retries = 0 }

(* Classify one response line into the summary. A response that is not
   valid JSON counts as an error (the wire guarantees one JSON object
   per line); a structured service failure additionally counts as an
   SRV error — the front end turns those into a distinct exit code. *)
let absorb summary response =
  let is_error, is_srv, cached =
    match Json.parse response with
    | Error _ -> (true, false, false)
    | Ok json ->
        let is_error =
          match Protocol.response_status json with
          | Some "error" -> true
          | Some _ -> false
          | None -> true
        in
        let is_srv =
          match Option.bind (Json.member "code" json) Json.to_str with
          | Some code ->
              String.length code >= 3 && String.sub code 0 3 = "SRV"
          | None -> false
        in
        (is_error, is_error && is_srv, Protocol.response_cached json)
  in
  {
    summary with
    sent = summary.sent + 1;
    errors = (summary.errors + if is_error then 1 else 0);
    srv_errors = (summary.srv_errors + if is_srv then 1 else 0);
    cache_hits = (summary.cache_hits + if cached then 1 else 0);
  }

let request_id line lineno =
  match Json.parse line with
  | Ok json -> begin
      match Option.bind (Json.member "id" json) Json.to_str with
      | Some id -> id
      | None -> Printf.sprintf "req-%d" lineno
    end
  | Error _ -> Printf.sprintf "req-%d" lineno

(* One lockstep exchange over an open connection. Raises [Disconnected]
   when the transport fails before the response arrives — a receive
   timeout ([Wire.Timeout]), a closed peer ([Wire.Closed]), or any
   other socket failure. EINTR from the systhreads tick signal is
   retried inside {!Wire} and never surfaces here (the channel-based
   predecessor mistook it for a disconnect). *)
let exchange ~conn ~summary line lineno =
  let id = request_id line lineno in
  let fail msg = raise (Disconnected (Printf.sprintf "%s: %s" id msg)) in
  (match Wire.write_line conn line with
  | () -> ()
  | exception Wire.Timeout -> fail "send timed out"
  | exception Wire.Closed -> fail "connection closed"
  | exception Unix.Unix_error (err, _, _) -> fail (Unix.error_message err));
  match Wire.read_line conn with
  | exception Wire.Timeout -> fail "receive timed out"
  | exception Wire.Closed -> fail "connection closed"
  | exception Unix.Unix_error (err, _, _) -> fail (Unix.error_message err)
  | response ->
      summary := absorb !summary response;
      response

let session ~fd ~input ~on_response =
  let conn = Wire.of_fd fd in
  let summary = ref empty_summary in
  let lineno = ref 0 in
  let rec loop () =
    match input_line input with
    | exception End_of_file -> ()
    | line ->
        incr lineno;
        let trimmed = String.trim line in
        if trimmed <> "" then
          on_response (exchange ~conn ~summary trimmed !lineno);
        loop ()
  in
  loop ();
  !summary

(* ------------------------------------------------------------------ *)
(* Retrying driver *)

let retryable_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.EPIPE
  | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EAGAIN ->
      true
  | _ -> false

(* Capped exponential backoff with multiplicative jitter: attempt n
   waits base * 2^n (capped) scaled by a uniform factor in [0.5, 1.5) —
   a herd of retrying clients decorrelates instead of stampeding. *)
let backoff_delay rng ~attempt =
  let base = 0.05 and cap = 1.0 in
  let exp = base *. (2. ** float_of_int attempt) in
  Float.min cap exp *. (0.5 +. Rng.uniform rng)

let call ?(retries = 0) ?(timeout = 0.)
    ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) endpoint ~input
    ~on_response =
  (* Slurp the job lines up front: a mid-session reconnect resumes from
     the failed request (solves are deterministic and idempotent, so a
     request answered just before the cut simply re-answers from the
     server's cache). *)
  let lines =
    let acc = ref [] in
    let lineno = ref 0 in
    let rec read () =
      match input_line input with
      | exception End_of_file -> ()
      | line ->
          incr lineno;
          let trimmed = String.trim line in
          if trimmed <> "" then acc := (trimmed, !lineno) :: !acc;
          read ()
    in
    read ();
    Array.of_list (List.rev !acc)
  in
  let rng = Rng.create () in
  let summary = ref empty_summary in
  let next = ref 0 in
  let failures = ref 0 in
  (* consecutive, reset on success *)
  let retry ~what =
    if !failures >= retries then false
    else begin
      let delay = backoff_delay rng ~attempt:!failures in
      incr failures;
      summary := { !summary with retries = !summary.retries + 1 };
      on_retry ~attempt:!failures ~delay what;
      Thread.delay delay;
      true
    end
  in
  while !next < Array.length lines do
    match connect ~timeout endpoint with
    | exception Unix.Unix_error (err, _, _)
      when retryable_error err
           && retry ~what:("connect: " ^ Unix.error_message err) ->
        ()
    | fd ->
        let conn = Wire.of_fd fd in
        let drive () =
          while !next < Array.length lines do
            let line, lineno = lines.(!next) in
            let response = exchange ~conn ~summary line lineno in
            failures := 0;
            incr next;
            on_response response
          done
        in
        let outcome =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match drive () with
              | () -> `Done
              | exception Disconnected what -> `Dropped what)
        in
        (match outcome with
        | `Done -> ()
        | `Dropped what ->
            if not (retry ~what) then raise (Disconnected what))
  done;
  !summary
