(** Bounded multi-producer / multi-consumer request queue — the
    backpressure point between connection handlers and solver workers.

    {!push} never blocks: a full queue answers [`Full] so the producer
    can reject the request with a structured error instead of letting an
    unbounded backlog build up, and a closed (draining) queue answers
    [`Closed]. {!pop} blocks until an element, or until the queue is
    closed {e and} drained — consumers therefore finish every request
    that was accepted before the drain started, which is exactly the
    graceful-shutdown contract of [mrm2 serve]. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Enqueue without blocking. [`Closed] wins over [`Full]. *)

val pop : 'a t -> 'a option
(** Dequeue in FIFO order, blocking while the queue is empty and open.
    [None] once the queue is closed and every accepted element has been
    consumed. *)

val close : 'a t -> unit
(** Refuse further {!push}es and wake blocked consumers; already-queued
    elements are still delivered. Idempotent. *)

val closed : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
