(** The resident solver service behind [mrm2 serve].

    A server listens on a Unix-domain socket or a TCP address, speaks
    the {!Protocol} JSONL wire format over any number of concurrent
    connections, and funnels every request through

    - server-side model validation ({!Protocol.validate}, [SRV005] with
      MRM0xx diagnostics over the wire instead of a crashed connection),
    - a bounded {!Rqueue} (explicit [SRV002] backpressure when full),
    - an {!Lru_cache} of solved outcomes keyed by
      {!Mrm_batch.Batch.digest} (a repeat job is answered bit-for-bit
      from the cache without re-solving), and
    - solver worker threads that run cache misses as one-job
      {!Mrm_batch.Batch.run}s on the shared {!Mrm_engine.Pool}.

    {2 Threading model}

    One acceptor thread, one handler thread per connection, [workers]
    solver threads, and [pool_jobs - 1] pool domains shared by all
    solves ({!Mrm_engine.Pool} serializes concurrent runs, so extra
    workers overlap cache hits and deadline rejections with a running
    solve rather than oversubscribing cores). With [workers = 1] the
    per-request trace spans ([server.request]) nest correctly; more
    workers keep metrics exact but interleave span emission.

    {2 Graceful drain}

    {!drain} (hooked to SIGTERM/SIGINT by {!run}) stops the acceptor,
    half-closes idle connections, lets in-flight solves finish, flushes
    every pending response, and only then lets {!wait} return — the
    [mrm2 serve] process exits 0.

    {2 Metrics}

    [server.connections], [server.requests], [server.parse_errors],
    [server.validation_failures], [server.rejected] (queue-full
    backpressure), [server.timeouts] (deadline expiries),
    [server.cache_hits], [server.cache_misses],
    [server.cache_evictions], [server.drains]; gauges
    [server.queue_peak] (high-watermark queue depth) and
    [server.cache_entries]. *)

type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  endpoint : endpoint;
  queue_capacity : int;  (** bounded request queue (backpressure point) *)
  cache_entries : int;  (** LRU result-cache entry cap *)
  cache_bytes : int;  (** LRU result-cache (approximate) byte cap *)
  workers : int;  (** solver worker threads *)
  pool_jobs : int;  (** domains of the shared solve pool (1 = sequential) *)
  default_eps : float;  (** [eps] for jobs that do not set one *)
  validate : bool;  (** run {!Protocol.validate} before solving *)
}

val default_config : endpoint -> config
(** [queue_capacity = 64], [cache_entries = 256], [cache_bytes =
    64 MiB], [workers = 1], [pool_jobs = 1], [default_eps = 1e-9],
    [validate = true]. *)

type handle

val bind_endpoint : endpoint -> Unix.file_descr
(** Bind and listen on an endpoint without starting a server — the
    cluster router reuses the server's socket handling. A Unix socket
    path already on disk is connect-probed first: a refused connection
    marks it as the leftover of a crashed process and it is unlinked; a
    live listener (or a path that is not a socket) raises
    [Unix.Unix_error (EADDRINUSE, _, _)] instead of being clobbered. *)

val start : config -> handle
(** Bind, listen and spawn the acceptor/worker threads, then return.
    @raise Unix.Unix_error when the endpoint cannot be bound. A stale
    Unix socket path from a crashed previous run is detected (connect
    probe) and unlinked; a path with a live listener is refused with
    [EADDRINUSE]. *)

val listen_address : handle -> Unix.sockaddr
(** The bound address — for [`Tcp (host, 0)] this carries the actual
    port. *)

val drain : handle -> unit
(** Begin graceful shutdown (idempotent, callable from any thread or
    from a signal context): stop accepting, finish accepted work, wake
    {!wait}. *)

val wait : handle -> unit
(** Block until the server has fully drained: acceptor and every
    connection handler joined, queue empty, workers joined, sockets
    closed (and the Unix socket path unlinked). *)

val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> int
(** Block SIGTERM/SIGINT into a watcher thread that triggers {!drain}
    (the mask is installed {e before} {!start} so every spawned thread
    inherits it), ignore SIGPIPE, {!start}, call [on_ready] with the
    bound address, and {!wait}. Returns 0 — the [mrm2 serve] exit code
    for a graceful shutdown. *)
