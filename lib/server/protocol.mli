(** Wire protocol of the solver service — the [mrm2 batch] JSONL job
    format, extended with service-level fields.

    Requests are {!Mrm_batch.Batch.job_of_json} objects (one per line)
    with one extra optional field:
    - [deadline_s] (number [> 0]): a per-request budget in seconds,
      counted from the moment the server reads the line. A request still
      waiting in the queue when its deadline passes is answered with an
      [SRV003] error instead of being solved; a solve already running is
      never interrupted (same rule as graceful drain).

    Responses are {!Mrm_batch.Batch.outcome_to_json} objects with one
    extra field:
    - [cached] (bool): whether the result was served from the LRU cache
      (bit-for-bit the stored outcome of the first solve) rather than
      computed for this request.

    Service failures never close the connection; they are structured
    error lines [{"id", "status": "error", "code": "SRVxxx", "error":
    msg, "diagnostics"?: [...]}] with codes from {!error_table}.
    [SRV005] carries the {!Mrm_check} report (MRM0xx codes) of a model
    that failed server-side validation. *)

type request = {
  job : Mrm_batch.Batch.job;
  digest : string;  (** {!Mrm_batch.Batch.digest} of [job] — the cache key *)
  expires : float option;
      (** absolute [Unix.gettimeofday]-clock deadline, from [deadline_s] *)
}

val parse_request :
  ?default_eps:float -> now:float -> default_id:string -> string ->
  (request, string) result
(** Parse one request line ([now] anchors [deadline_s]). The error
    string is ready for an [SRV001] reply. *)

val validate : Mrm_batch.Batch.job -> Mrm_check.Diagnostics.t list
(** Server-side model validation: {!Mrm_check.Check.check} over the
    job's model with the job's solve configuration. Only
    [Error]-severity findings are returned — warnings must not reject a
    request that the one-shot CLI would happily solve. *)

(* ------------------------------------------------------------------ *)
(* Response rendering (one JSONL line, no trailing newline)             *)

val response_of_outcome :
  cached:bool -> Mrm_batch.Batch.outcome -> string

val error_response :
  id:string -> code:string ->
  ?diagnostics:Mrm_check.Diagnostics.t list -> string -> string

val error_table : (string * string) list
(** Registry of stable service error codes:
    [SRV001] malformed request line, [SRV002] queue full (backpressure)
    — also issued by the cluster router when the owning replica is at
    its in-flight cap, [SRV003] deadline exceeded, [SRV004] server
    draining, [SRV005] model failed validation, [SRV006] no healthy
    replica (cluster router, all failover candidates down). *)

(* ------------------------------------------------------------------ *)
(* Shared response accessors (used by the client and the tests)         *)

val response_status : Mrm_util.Json.t -> string option
(** The ["status"] field: ["ok"] or ["error"]. *)

val response_cached : Mrm_util.Json.t -> bool
(** The ["cached"] field, defaulting to [false]. *)
