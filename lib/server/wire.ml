(* Line-oriented socket I/O shared by the solver service (both sides)
   and the cluster tier: one JSONL line out, one line back, over a raw
   file descriptor with an explicit residue buffer.

   Channels (in_channel/out_channel) are deliberately avoided: a pooled
   connection moves between handler threads, the timeout behaviour
   (EAGAIN from SO_RCVTIMEO) must stay catchable instead of corrupting
   a buffered channel, and — crucially — the systhreads tick signal
   (SIGVTALRM) interrupts blocking syscalls. OCaml signal handlers are
   installed without SA_RESTART, so every read/write here retries
   EINTR: an interrupted syscall is not a dead peer. The channel-based
   code this replaces surfaced EINTR as [Sys_error] and treated it as a
   disconnect. *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read past the last returned line *)
}

exception Timeout
exception Closed

let of_fd fd = { fd; rbuf = Buffer.create 512 }
let fd conn = conn.fd
let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let write_line conn line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then begin
      (* single_write, not write: [Unix.write] loops over internal
         chunks and can raise EINTR after SOME chunks already hit the
         socket, so retrying from [off] would duplicate bytes on the
         wire. [single_write] issues exactly one write(2), making
         "EINTR => nothing was written" actually hold. *)
      match Unix.single_write conn.fd payload off (len - off) with
      | 0 -> raise Closed
      | n -> push (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* the systhreads tick signal interrupts blocking syscalls;
             an interrupted write is not a dead peer *)
          push off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          raise Timeout
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> raise Closed
    end
  in
  push 0

(* Extract the first complete line of [b], leaving the rest in place. *)
let take_line b =
  let s = Buffer.contents b in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear b;
      Buffer.add_substring b s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)

let read_line conn =
  let chunk = Bytes.create 4096 in
  let rec fill () =
    match take_line conn.rbuf with
    | Some line -> line
    | None -> begin
        match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise Closed
        | n ->
            Buffer.add_subbytes conn.rbuf chunk 0 n;
            fill ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            raise Timeout
      end
  in
  fill ()

(* One lockstep exchange; any transport failure is an [Error]. *)
let exchange conn line =
  match
    write_line conn line;
    read_line conn
  with
  | response -> Ok response
  | exception Timeout -> Error "timed out waiting for the response"
  | exception Closed -> Error "connection closed"
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
