(** Line-oriented socket I/O shared by the solver service and the
    cluster tier: raw descriptors with an explicit residue buffer.

    Every read and write retries [EINTR] — OCaml installs signal
    handlers without [SA_RESTART], so the systhreads tick signal
    routinely interrupts blocking socket syscalls; an interrupted
    syscall is not a dead peer. Receive/send deadlines set with
    [SO_RCVTIMEO]/[SO_SNDTIMEO] surface as {!Timeout} instead of a
    corrupted buffered channel. *)

type conn

exception Timeout
(** The send/receive deadline passed (SO_RCVTIMEO / SO_SNDTIMEO). *)

exception Closed
(** The peer closed the connection. *)

val of_fd : Unix.file_descr -> conn
(** Wrap an open descriptor (fresh, empty residue buffer). The wrapper
    owns nothing: closing is explicit via {!close}. *)

val fd : conn -> Unix.file_descr
(** The underlying descriptor (for [shutdown], registry bookkeeping). *)

val close : conn -> unit
(** Close the descriptor (errors ignored). *)

val write_line : conn -> string -> unit
(** Send [line ^ "\n"], handling partial writes and retrying [EINTR].
    @raise Timeout / Closed / Unix.Unix_error on transport failure. *)

val read_line : conn -> string
(** Receive the next newline-terminated line (the newline is stripped),
    retrying [EINTR].
    @raise Timeout / Closed / Unix.Unix_error on transport failure. *)

val exchange : conn -> string -> (string, string) result
(** [write_line] then [read_line], with every transport failure mapped
    to [Error reason]. *)
