(** Thin synchronous client for the solver service — the engine behind
    [mrm2 call].

    The client streams job-spec lines to a running [mrm2 serve], in
    lockstep: send one line, read one response line, hand it to the
    caller's callback (output policy stays with the front end — this
    library never prints). Blank input lines are skipped, mirroring the
    [mrm2 batch] reader. *)

type endpoint = Server.endpoint

val connect : endpoint -> Unix.file_descr
(** Open a connection to the service.
    @raise Unix.Unix_error when the endpoint is unreachable. *)

type summary = {
  sent : int;  (** requests sent (nonblank lines) *)
  errors : int;  (** responses with [status = "error"] *)
  cache_hits : int;  (** responses with [cached = true] *)
}

exception Disconnected of string
(** The server closed the connection (or the transport failed) before
    answering a sent request; the payload names the failed request id. *)

val session :
  fd:Unix.file_descr -> input:in_channel ->
  on_response:(string -> unit) -> summary
(** Drive one request/response session over an open connection, reading
    job specs from [input] until EOF. The connection is left open —
    callers close [fd]. Responses that are not valid JSON count as
    errors (the wire guarantees one JSON object per line). *)

val call :
  endpoint -> input:in_channel -> on_response:(string -> unit) -> summary
(** {!connect}, {!session}, close. *)
