(** Thin synchronous client for the solver service — the engine behind
    [mrm2 call].

    The client streams job-spec lines to a running [mrm2 serve] (or the
    [mrm2 route] cluster front-end — same wire format), in lockstep:
    send one line, read one response line, hand it to the caller's
    callback (output policy stays with the front end — this library
    never prints). Blank input lines are skipped, mirroring the
    [mrm2 batch] reader.

    {!call} is resilient: a refused connect or a connection cut
    mid-session retries with capped exponential backoff and jitter
    (up to [retries] consecutive failures), then resumes from the
    request that went unanswered — solves are deterministic and
    idempotent, so a request that was actually processed before the cut
    simply re-answers from the server's cache. *)

type endpoint = Server.endpoint

val connect : ?timeout:float -> endpoint -> Unix.file_descr
(** Open a connection to the service. [timeout > 0] (seconds) bounds
    every subsequent send and receive on the socket
    ([SO_SNDTIMEO]/[SO_RCVTIMEO]); an expired receive surfaces as a
    {!Disconnected} session failure.
    @raise Unix.Unix_error when the endpoint is unreachable. *)

type summary = {
  sent : int;  (** requests answered (nonblank lines) *)
  errors : int;  (** responses with [status = "error"] *)
  srv_errors : int;
      (** the subset of [errors] that are structured service failures
          (an [SRV00x] code) — [mrm2 call] exits 4 when nonzero *)
  cache_hits : int;  (** responses with [cached = true] *)
  retries : int;  (** reconnects performed by {!call} *)
}

exception Disconnected of string
(** The server closed the connection (or the transport failed, or the
    receive timeout expired) before answering a sent request; the
    payload names the failed request id. *)

val session :
  fd:Unix.file_descr -> input:in_channel ->
  on_response:(string -> unit) -> summary
(** Drive one request/response session over an open connection, reading
    job specs from [input] until EOF — no retries, connection left open
    (callers close [fd]). Responses that are not valid JSON count as
    errors (the wire guarantees one JSON object per line). *)

val call :
  ?retries:int -> ?timeout:float ->
  ?on_retry:(attempt:int -> delay:float -> string -> unit) ->
  endpoint -> input:in_channel -> on_response:(string -> unit) -> summary
(** Read all job specs from [input], then connect and drive the session
    to completion, reconnecting on transport failure. [retries]
    (default 0) caps {e consecutive} failures — the counter resets on
    every answered request; attempt [n] sleeps
    [min 1.0 (0.05 * 2^n) * U(0.5, 1.5)] seconds. [on_retry] is invoked
    before each backoff sleep (CLI feedback hook; the library itself
    never prints).
    @raise Disconnected when the budget is exhausted mid-session.
    @raise Unix.Unix_error when connecting fails with a non-transport
    error, or the budget is exhausted before any connect succeeds. *)
