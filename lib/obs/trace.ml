module Json = Mrm_util.Json

type sink = Null | Stderr | Jsonl of string

type value = Bool of bool | Int of int | Float of float | Str of string

(* ------------------------------------------------------------------ *)
(* A tiny spin lock serializes sink emission and sink swaps. [Mutex]
   lives in the threads library on OCaml 4.14, which nothing below bin/
   links; [Atomic] is in the stdlib from 4.12 on and is all we need for
   the short critical sections here (a formatted write per record). *)

let lock = Atomic.make false

let rec acquire () =
  if not (Atomic.compare_and_set lock false true) then acquire ()

let release () = Atomic.set lock false

let locked f =
  acquire ();
  Fun.protect ~finally:release f

(* ------------------------------------------------------------------ *)
(* Clock: wall time relative to process start, clamped monotone so
   records never step backwards even if gettimeofday does. *)

let t0 = Unix.gettimeofday ()
let last_stamp = Atomic.make 0.

let rec now () =
  let t = Unix.gettimeofday () -. t0 in
  let seen = Atomic.get last_stamp in
  if t <= seen then seen
  else if Atomic.compare_and_set last_stamp seen t then t
  else now ()

(* ------------------------------------------------------------------ *)
(* Sink state (all guarded by [lock]).                                  *)

let sink_state = ref Null
let channel = ref None (* open out_channel of a Jsonl sink *)
let at_exit_registered = ref false

let close_channel_locked () =
  match !channel with
  | None -> ()
  | Some oc ->
      channel := None;
      (try close_out oc with Sys_error _ -> ())

let flush () =
  locked (fun () ->
      match !channel with
      | None -> ()
      | Some oc -> ( try Stdlib.flush oc with Sys_error _ -> ()))

let set_sink s =
  locked (fun () ->
      close_channel_locked ();
      sink_state := s;
      match s with
      | Jsonl path ->
          channel := Some (open_out path);
          if not !at_exit_registered then begin
            at_exit_registered := true;
            Stdlib.at_exit (fun () -> locked close_channel_locked)
          end
      | Null | Stderr -> ())

let current_sink () = !sink_state
let enabled () = !sink_state <> Null

let sink_of_spec = function
  | "" | "0" | "off" | "null" -> Null
  | "stderr" | "1" -> Stderr
  | path -> Jsonl path

let init_from_env () =
  match Sys.getenv_opt "MRM2_TRACE" with
  | None -> ()
  | Some spec -> set_sink (sink_of_spec spec)

(* ------------------------------------------------------------------ *)
(* Spans. Nesting is a process-wide stack: spans are opened from the
   coordinating thread (workers use Metrics / event), so a plain ref
   is enough — see the .mli note.                                       *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;
  mutable attrs : (string * value) list;
}

let next_id = Atomic.make 1
let current : span option ref = ref None

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int k -> Json.Num (float_of_int k)
  | Float x -> Json.Num x
  | Str s -> Json.Str s

let string_of_value = function
  | Bool b -> string_of_bool b
  | Int k -> string_of_int k
  | Float x -> Printf.sprintf "%g" x
  | Str s -> s

let attrs_json attrs =
  Json.Obj (List.rev_map (fun (k, v) -> (k, json_of_value v)) attrs)

let attrs_human attrs =
  String.concat ""
    (List.rev_map
       (fun (k, v) -> Printf.sprintf " %s=%s" k (string_of_value v))
       attrs)

let emit_line json human =
  locked (fun () ->
      match !sink_state with
      | Null -> ()
      | Stderr ->
          (* mrm:ignore SRC006 — this is the stderr sink itself: the one
             place library output is allowed to reach a terminal *)
          prerr_string (human ());
          prerr_newline () (* mrm:ignore SRC006 — stderr sink *)
      | Jsonl _ -> (
          match !channel with
          | None -> ()
          | Some oc ->
              output_string oc (Json.to_string (json ()));
              output_char oc '\n';
              Stdlib.flush oc))

let emit_span span ~stop =
  let parent =
    match span.parent with None -> Json.Null | Some p -> Json.Num (float_of_int p)
  in
  emit_line
    (fun () ->
      Json.Obj
        [
          ("type", Json.Str "span");
          ("name", Json.Str span.name);
          ("id", Json.Num (float_of_int span.id));
          ("parent", parent);
          ("start", Json.Num span.start);
          ("end", Json.Num stop);
          ("elapsed", Json.Num (stop -. span.start));
          ("attrs", attrs_json span.attrs);
        ])
    (fun () ->
      Printf.sprintf "[mrm2-trace] span %s %.3fms%s" span.name
        ((stop -. span.start) *. 1e3)
        (attrs_human span.attrs))

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let span =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent = (match !current with None -> None | Some s -> Some s.id);
        name;
        start = now ();
        attrs = List.rev attrs;
      }
    in
    let saved = !current in
    current := Some span;
    let finish () =
      current := saved;
      emit_span span ~stop:(now ())
    in
    match f () with
    | result ->
        finish ();
        result
    | exception exn ->
        span.attrs <- ("raised", Str (Printexc.to_string exn)) :: span.attrs;
        finish ();
        raise exn
  end

let add_attr key v =
  if enabled () then
    match !current with
    | None -> ()
    | Some span -> span.attrs <- (key, v) :: span.attrs

let event ?(attrs = []) name =
  if enabled () then begin
    let span =
      match !current with None -> Json.Null | Some s -> Json.Num (float_of_int s.id)
    in
    let time = now () in
    let attrs = List.rev attrs in
    emit_line
      (fun () ->
        Json.Obj
          [
            ("type", Json.Str "event");
            ("name", Json.Str name);
            ("span", span);
            ("time", Json.Num time);
            ("attrs", attrs_json attrs);
          ])
      (fun () ->
        Printf.sprintf "[mrm2-trace] event %s%s" name (attrs_human attrs))
  end

(* Environment activation at program start: every binary linking this
   library honours MRM2_TRACE without further wiring. *)
let () = init_from_env ()
