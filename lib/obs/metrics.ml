module Json = Mrm_util.Json

type counter = int Atomic.t
type gauge = float Atomic.t

(* Registry guarded by the same kind of spin lock as Trace (Mutex is
   unavailable below the threads library on 4.14). Updates to the cells
   themselves are lock-free. *)

let lock = Atomic.make false

let rec acquire () =
  if not (Atomic.compare_and_set lock false true) then acquire ()

let release () = Atomic.set lock false

let locked f =
  acquire ();
  Fun.protect ~finally:release f

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let find_or_create table name make =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some cell -> cell
      | None ->
          let cell = make () in
          Hashtbl.add table name cell;
          cell)

let counter name = find_or_create counters name (fun () -> Atomic.make 0)

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  ignore (Atomic.fetch_and_add c by)

let count = Atomic.get

let gauge name = find_or_create gauges name (fun () -> Atomic.make Float.nan)

let set = Atomic.set

let rec observe_max g v =
  let seen = Atomic.get g in
  if Float.is_nan seen || v > seen then begin
    if not (Atomic.compare_and_set g seen v) then observe_max g v
  end

let gauge_value = Atomic.get

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
}

let sorted_bindings table read =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name cell acc -> (name, read cell) :: acc) table [])

let snapshot () =
  locked (fun () ->
      {
        counters = sorted_bindings counters Atomic.get;
        gauges =
          List.filter
            (fun (_, v) -> not (Float.is_nan v))
            (sorted_bindings gauges Atomic.get);
      })

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g Float.nan) gauges)

let pp_report ppf () =
  let { counters; gauges } = snapshot () in
  Format.fprintf ppf "@[<v>metrics:";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "@,  %-32s %d" name v)
    counters;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "@,  %-32s %g" name v)
    gauges;
  if counters = [] && gauges = [] then
    Format.fprintf ppf " (none recorded)";
  Format.fprintf ppf "@]@."

let to_json () =
  let { counters; gauges } = snapshot () in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) counters)
      );
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Num v)) gauges));
    ]
