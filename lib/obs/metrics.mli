(** Named monotonic counters and gauges for the solver stack.

    Counters and gauges are process-global, created on first use and
    registered by name; repeated {!counter}/{!gauge} calls with the same
    name return the same underlying cell. Updates are atomic, so pool
    workers (OCaml 5 domains) can record concurrently; creation and
    {!snapshot}/{!reset} serialize on an internal lock.

    {!reset} zeroes values but keeps every registered cell alive, so
    handles held at module-initialization time stay valid for the whole
    process.

    Metric names recorded by the instrumented stack:
    - [randomization.solves], [randomization.iterations] (total Poisson
      terms, i.e. summed truncation points [G]),
      [randomization.terms_skipped] (zero-weight fast path),
      [randomization.truncation_point] (gauge: last [G]);
    - [ode.solves], [ode.steps];
    - [bounds.prepare], [bounds.hankel_order] (gauge: Gauss nodes
      accepted by {!Mrm_core.Moment_bounds.prepare}),
      [bounds.orders_rejected];
    - [pool.runs], [pool.jobs] (tasks executed by the domain pool),
      [partition.imbalance] (gauge: worst observed
      [parts * max_part_nnz / total_nnz], 1.0 = perfectly balanced);
    - [batch.jobs], [batch.dedup_hits];
    - the solver service ([mrm2 serve]): [server.connections],
      [server.requests], [server.parse_errors],
      [server.validation_failures], [server.rejected] (queue-full
      backpressure), [server.timeouts] (deadline expiries),
      [server.cache_hits], [server.cache_misses],
      [server.cache_evictions], [server.drains]; gauges
      [server.queue_peak] (high-watermark request-queue depth) and
      [server.cache_entries];
    - the sharding router ([mrm2 route]): [cluster.connections],
      [cluster.requests], [cluster.parse_errors], [cluster.forwarded],
      [cluster.failovers] (failed forward attempts retried on the next
      ring successor), [cluster.shed] (SRV002 per-replica in-flight cap),
      [cluster.unavailable] (SRV006: no healthy replica),
      [cluster.probes], [cluster.probe_failures], [cluster.marked_down]
      (up->down transitions, passive or probe-detected),
      [cluster.readmitted]; gauges [cluster.replicas_up] and
      [cluster.inflight_peak] (high-watermark forwarded requests in
      flight across all replicas). *)

type counter
type gauge

val counter : string -> counter
(** Find or create the monotonic counter with this name (initially 0). *)

val incr : ?by:int -> counter -> unit
(** Atomically add [by] (default 1; must be [>= 0]). *)

val count : counter -> int

val gauge : string -> gauge
(** Find or create the gauge with this name (initially [nan] = unset). *)

val set : gauge -> float -> unit
(** Record the latest value. *)

val observe_max : gauge -> float -> unit
(** Keep the running maximum of the observed values. *)

val gauge_value : gauge -> float
(** Current value; [nan] when never set since creation or {!reset}. *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name; unset gauges omitted *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero all counters and unset all gauges, keeping every cell
    registered (existing handles remain valid). *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable table of the current snapshot. *)

val to_json : unit -> Mrm_util.Json.t
(** [{"counters": {...}, "gauges": {...}}] of the current snapshot. *)
