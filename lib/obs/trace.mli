(** Hierarchical tracing spans for the solver stack.

    A span is a named region of execution with a start and end
    timestamp, an optional parent span, and structured key/value
    attributes. Spans are emitted to the configured {!sink} when they
    close, one record per span, so a trace of a solve reads bottom-up:
    inner phases first, the enclosing solve last.

    Tracing is observational only: instrumented code paths compute
    bit-for-bit the same results whether a sink is attached or not.

    {2 Activation}

    The sink defaults to {!Null} (every call is a cheap no-op) and can
    be chosen three ways:
    - programmatically with {!set_sink};
    - with the [--trace[=SINK]] flag of the [mrm2] subcommands;
    - with the [MRM2_TRACE] environment variable, read once at program
      start: unset, [""], ["0"], ["off"] or ["null"] keep the null
      sink; ["stderr"] or ["1"] select the human-readable sink; any
      other value is a file path receiving JSONL records.

    {2 JSONL schema}

    Each line of a {!Jsonl} sink is one object serialized with
    {!Mrm_util.Json}:
    - spans: [{"type":"span","name":...,"id":N,"parent":N|null,
      "start":s,"end":s,"elapsed":s,"attrs":{...}}]
    - events: [{"type":"event","name":...,"span":N|null,"time":s,
      "attrs":{...}}]

    Timestamps are seconds since process start, clamped to be
    monotonically non-decreasing across records.

    {2 Concurrency}

    Emission is serialized internally, so any thread or domain may
    close spans or post events without corrupting the output. Span
    {e nesting}, however, is tracked in a single process-wide stack:
    open spans from the coordinating thread and use {!Metrics} (or
    {!event}) from pool workers. *)

type sink =
  | Null  (** discard everything (the default) *)
  | Stderr  (** one human-readable line per span/event on stderr *)
  | Jsonl of string  (** JSONL records appended to the named file *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val set_sink : sink -> unit
(** Select the sink. Replacing a {!Jsonl} sink flushes and closes its
    file. *)

val current_sink : unit -> sink

val enabled : unit -> bool
(** [true] iff the sink is not {!Null}. *)

val sink_of_spec : string -> sink
(** Parse an [MRM2_TRACE] / [--trace] specification (see above). *)

val init_from_env : unit -> unit
(** Apply [MRM2_TRACE] to the current sink; called automatically when
    the library is linked, exposed for tests. Does nothing when the
    variable is unset. *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. The span closes (and is
    emitted) when [f] returns or raises; a raising span carries a
    ["raised"] attribute with the exception text. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span; no-op when no span
    is open or tracing is disabled. *)

val event : ?attrs:(string * value) list -> string -> unit
(** Emit a point-in-time record tagged with the innermost open span. *)

val flush : unit -> unit
(** Flush the sink (JSONL file sinks buffer). Also registered with
    [at_exit]. *)
