type eig = { eigenvalues : float array; first_components : float array }

(* Implicit-shift QL for a symmetric tridiagonal matrix, rotating a row
   vector [z] along (initialized to e_1 to track eigenvector first
   components). Classic tql2 adaptation (Golub–Welsch variant). *)
let ql_implicit d e z =
  let n = Array.length d in
  let e = Array.append e [| 0. |] in
  let hypot a b = Float.hypot a b in
  for l = 0 to n - 1 do
    let iter = ref 0 in
    let continue = ref true in
    while !continue do
      (* Find a negligible off-diagonal element. *)
      let m = ref l in
      (try
         while !m < n - 1 do
           let dd = abs_float d.(!m) +. abs_float d.(!m + 1) in
           if abs_float e.(!m) <= epsilon_float *. dd then raise Exit;
           incr m
         done
       with Exit -> ());
      if Int.equal !m l then continue := false
      else begin
        incr iter;
        if !iter > 50 then
          failwith "Tridiag.eigen: QL iteration failed to converge";
        let m = !m in
        (* Wilkinson shift. *)
        let g = (d.(l + 1) -. d.(l)) /. (2. *. e.(l)) in
        let r = hypot g 1. in
        let g =
          d.(m) -. d.(l)
          +. (e.(l) /. (g +. (if g >= 0. then abs_float r else -.abs_float r)))
        in
        let s = ref 1. and c = ref 1. and p = ref 0. in
        let g = ref g in
        (try
           for i = m - 1 downto l do
             let f = ref (!s *. e.(i)) in
             let b = !c *. e.(i) in
             let r = hypot !f !g in
             e.(i + 1) <- r;
             (* mrm:ignore SRC001 -- sentinel: exactly-zero rotation radius
                means the off-diagonal is already annihilated *)
             if r = 0. then begin
               d.(i + 1) <- d.(i + 1) -. !p;
               e.(m) <- 0.;
               raise Exit
             end;
             s := !f /. r;
             c := !g /. r;
             let gg = d.(i + 1) -. !p in
             let rr = ((d.(i) -. gg) *. !s) +. (2. *. !c *. b) in
             p := !s *. rr;
             d.(i + 1) <- gg +. !p;
             g := (!c *. rr) -. b;
             (* Rotate the tracked row vector. *)
             let fz = z.(i + 1) in
             z.(i + 1) <- (!s *. z.(i)) +. (!c *. fz);
             z.(i) <- (!c *. z.(i)) -. (!s *. fz)
           done;
           d.(l) <- d.(l) -. !p;
           e.(l) <- !g;
           e.(m) <- 0.
         with Exit -> ())
      end
    done
  done

let eigen ~diag ~offdiag =
  let n = Array.length diag in
  if Array.length offdiag <> max 0 (n - 1) then
    invalid_arg "Tridiag.eigen: offdiag must have length n-1";
  let d = Array.copy diag in
  let e = Array.copy offdiag in
  let z = Array.make n 0. in
  if n > 0 then z.(0) <- 1.;
  if n > 1 then ql_implicit d e z;
  (* Sort ascending, carrying first components along. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare d.(i) d.(j)) order;
  {
    eigenvalues = Array.map (fun i -> d.(i)) order;
    first_components = Array.map (fun i -> z.(i)) order;
  }

let eigenvalues ~diag ~offdiag = (eigen ~diag ~offdiag).eigenvalues
