open Complex

type t = { rows : int; cols : int; data : Complex.t array }

let zeros ~rows ~cols = { rows; cols; data = Array.make (rows * cols) zero }

let identity n =
  let m = zeros ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- one
  done;
  m

let init ~rows ~cols f =
  {
    rows;
    cols;
    data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols));
  }

let of_real d =
  init ~rows:(Dense.rows d) ~cols:(Dense.cols d) (fun i j ->
      { re = Dense.get d i j; im = 0. })

let rows m = m.rows
let cols m = m.cols

let check_index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Cmatrix: index out of range"

let get m i j =
  check_index m i j;
  m.data.((i * m.cols) + j)

let set m i j x =
  check_index m i j;
  m.data.((i * m.cols) + j) <- x

let check_same_shape name a b =
  if not (Int.equal a.rows b.rows && Int.equal a.cols b.cols) then
    invalid_arg (Printf.sprintf "Cmatrix.%s: shape mismatch" name)

let add a b =
  check_same_shape "add" a b;
  { a with data = Array.mapi (fun k x -> Complex.add x b.data.(k)) a.data }

let sub a b =
  check_same_shape "sub" a b;
  { a with data = Array.mapi (fun k x -> Complex.sub x b.data.(k)) a.data }

let scale alpha a =
  { a with data = Array.map (fun x -> Complex.mul alpha x) a.data }

let mv a x =
  if a.cols <> Array.length x then invalid_arg "Cmatrix.mv: dimension";
  Array.init a.rows (fun i ->
      let acc = ref zero in
      for j = 0 to a.cols - 1 do
        acc := Complex.add !acc (Complex.mul a.data.((i * a.cols) + j) x.(j))
      done;
      !acc)

let solve a b =
  let n = a.rows in
  if not (Int.equal a.cols n) then invalid_arg "Cmatrix.solve: non-square matrix";
  if Array.length b <> n then invalid_arg "Cmatrix.solve: dimension mismatch";
  let m = Array.init n (fun i -> Array.init n (fun j -> get a i j)) in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm m.(i).(k) > Complex.norm m.(!pivot_row).(k) then
        pivot_row := i
    done;
    if not (Int.equal !pivot_row k) then begin
      let tmp = m.(k) in
      m.(k) <- m.(!pivot_row);
      m.(!pivot_row) <- tmp;
      let tb = x.(k) in
      x.(k) <- x.(!pivot_row);
      x.(!pivot_row) <- tb
    end;
    let pivot = m.(k).(k) in
    (* mrm:ignore SRC001 -- sentinel: exact zero norm means a structurally
       singular pivot; a tolerance would reject valid stiff systems *)
    if Complex.norm pivot = 0. then failwith "Cmatrix.solve: singular matrix";
    for i = k + 1 to n - 1 do
      let factor = Complex.div m.(i).(k) pivot in
      (* mrm:ignore SRC001 -- sentinel: skip exactly-zero elimination factors *)
      if Complex.norm factor <> 0. then begin
        for j = k to n - 1 do
          m.(i).(j) <- Complex.sub m.(i).(j) (Complex.mul factor m.(k).(j))
        done;
        x.(i) <- Complex.sub x.(i) (Complex.mul factor x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := Complex.sub !acc (Complex.mul m.(i).(j) x.(j))
    done;
    x.(i) <- Complex.div !acc m.(i).(i)
  done;
  x
