(** Eigenvalues of general (nonsymmetric) real dense matrices:
    Householder reduction to upper Hessenberg form followed by the
    Francis implicit double-shift QR iteration.

    Needed by the second-order fluid-queue comparator, whose stationary
    solution is a spectral decomposition of a quadratic eigenproblem.
    Eigenvalues only — eigenvectors are recovered separately by inverse
    iteration on the (nearly singular) shifted matrix, which composes
    better with the quadratic problem. *)

val eigenvalues : Dense.t -> Complex.t array
(** All [n] eigenvalues (with multiplicity), in unspecified order.
    Accuracy is ~1e-12 on well-conditioned spectra and degrades to
    ~sqrt(epsilon) on defective ones, as is intrinsic to the problem.
    @raise Invalid_argument on non-square input.
    @raise Failure if the QR iteration fails to converge (more than 40
    iterations for some eigenvalue). *)

val hessenberg : Dense.t -> Dense.t
(** The orthogonally-similar upper Hessenberg form (exposed for tests:
    similarity preserves trace and eigenvalues). *)
