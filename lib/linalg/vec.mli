(** Dense vectors as [float array] with the small algebra the solvers
    need. All binary operations require equal lengths. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y := alpha * x + y]. *)

val add_inplace : t -> t -> unit
(** [add_inplace dst src] is [dst := dst + src]. *)

val scale_inplace : float -> t -> unit

val dot : t -> t -> float
val norm_inf : t -> float
val norm1 : t -> float
val norm2 : t -> float

val sum : t -> float
val map : (float -> float) -> t -> t
val max_abs_diff : t -> t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute-plus-relative tolerance. *)

val pp : Format.formatter -> t -> unit
