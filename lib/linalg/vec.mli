(** Dense vectors as [float array] with the small algebra the solvers
    need. All binary operations require equal lengths. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val ones : int -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y := alpha * x + y]. *)

val axpy_range : alpha:float -> x:t -> y:t -> lo:int -> hi:int -> unit
(** {!axpy} restricted to indices [lo .. hi-1]; the slice kernel behind
    the partitioned (multi-domain) reductions of {!Mrm_engine.Kernel}.
    Requires [0 <= lo <= hi <= dim]. *)

val add_inplace : t -> t -> unit
(** [add_inplace dst src] is [dst := dst + src]. *)

val scale_inplace : float -> t -> unit

val dot : t -> t -> float

val dot_range : t -> t -> lo:int -> hi:int -> float
(** Partial dot product over indices [lo .. hi-1] (the per-chunk piece
    of a parallel reduction). Requires [0 <= lo <= hi <= dim]. *)

val sum_range : t -> lo:int -> hi:int -> float
(** Partial sum over indices [lo .. hi-1]. *)

val norm_inf : t -> float
val norm1 : t -> float
val norm2 : t -> float

val sum : t -> float
val map : (float -> float) -> t -> t
val max_abs_diff : t -> t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute-plus-relative tolerance. *)

val pp : Format.formatter -> t -> unit
