type t = float array

let create n x = Array.make n x
let zeros n = Array.make n 0.
let ones n = Array.make n 1.
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_same_dim name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length a) (Array.length b))

let add a b =
  check_same_dim "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_same_dim "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale alpha a = Array.map (fun x -> alpha *. x) a

let check_range name a ~lo ~hi =
  if lo < 0 || hi > Array.length a || lo > hi then
    invalid_arg
      (Printf.sprintf "Vec.%s: bad range [%d, %d) for dimension %d" name lo hi
         (Array.length a))

let axpy_range ~alpha ~x ~y ~lo ~hi =
  check_same_dim "axpy_range" x y;
  check_range "axpy_range" x ~lo ~hi;
  for i = lo to hi - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let axpy ~alpha ~x ~y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let add_inplace dst src =
  check_same_dim "add_inplace" dst src;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) +. src.(i)
  done

let scale_inplace alpha a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- alpha *. a.(i)
  done

let dot a b =
  check_same_dim "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let dot_range a b ~lo ~hi =
  check_same_dim "dot_range" a b;
  check_range "dot_range" a ~lo ~hi;
  let acc = ref 0. in
  for i = lo to hi - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let sum_range a ~lo ~hi =
  check_range "sum_range" a ~lo ~hi;
  let acc = ref 0. in
  for i = lo to hi - 1 do
    acc := !acc +. a.(i)
  done;
  !acc

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0. a
let norm1 a = Array.fold_left (fun acc x -> acc +. abs_float x) 0. a
let norm2 a = sqrt (dot a a)
let sum a = Array.fold_left ( +. ) 0. a
let map = Array.map

let max_abs_diff a b =
  check_same_dim "max_abs_diff" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := Float.max !acc (abs_float (a.(i) -. b.(i)))
  done;
  !acc

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         let scale = 1. +. Float.max (abs_float a.(i)) (abs_float b.(i)) in
         if abs_float (a.(i) -. b.(i)) > tol *. scale then ok := false
       done;
       !ok
     end

let pp ppf a =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    a;
  Format.fprintf ppf "|]"
