(** Complex dense matrices and LU solves.

    Needed by the Abate–Whitt (Euler) Laplace inversion baseline, whose
    resolvent evaluations [ (sI - Q + vR - v^2/2 S)^{-1} h ] sit at complex
    [s]. Uses [Stdlib.Complex]. *)

type t

val zeros : rows:int -> cols:int -> t
val identity : int -> t
val init : rows:int -> cols:int -> (int -> int -> Complex.t) -> t
val of_real : Dense.t -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val add : t -> t -> t
val sub : t -> t -> t
val scale : Complex.t -> t -> t
val mv : t -> Complex.t array -> Complex.t array

val solve : t -> Complex.t array -> Complex.t array
(** Solve [A x = b] by LU with partial pivoting (by modulus).
    @raise Failure on singular systems. *)
