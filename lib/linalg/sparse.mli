(** Compressed-sparse-row matrices.

    The randomization solver's inner loop is a sequence of CSR
    matrix–vector products with the uniformized generator; the paper's
    large example ([|S| = 200,001]) only fits with this representation. *)

type t

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Build from (row, col, value) triplets. Duplicate entries are summed;
    exact zeros are dropped. @raise Invalid_argument on out-of-range
    indices. *)

val of_dense : Dense.t -> t
val to_dense : t -> Dense.t

val identity : int -> t
val diagonal : float array -> t

val get : t -> int -> int -> float
(** O(log nnz-in-row) lookup; 0. for absent entries. *)

val mv : t -> Vec.t -> Vec.t
(** [mv a x] is [A x]. *)

val mv_into : t -> Vec.t -> Vec.t -> unit
(** [mv_into a x y] writes [A x] into pre-allocated [y] (no allocation in
    the hot loop). [x] and [y] must be distinct arrays. *)

val mv_into_range : t -> Vec.t -> Vec.t -> lo:int -> hi:int -> unit
(** [mv_into_range a x y ~lo ~hi] writes rows [lo .. hi-1] of [A x] into
    the same rows of [y], leaving the rest of [y] untouched — the
    row-slice kernel behind the partitioned (multi-domain) mat-vec of
    {!Mrm_engine.Kernel}. Requires [0 <= lo <= hi <= rows]; [x] and [y]
    must be distinct. [mv_into] is the [lo = 0, hi = rows] case. *)

val row_offsets : t -> int array
(** A fresh copy of the CSR row-start offsets (length [rows + 1]):
    row [i]'s entries occupy positions [offsets.(i) .. offsets.(i+1) - 1],
    so [offsets.(i+1) - offsets.(i)] is the nnz of row [i] and
    [offsets.(rows)] is {!nnz}. Used to balance row partitions by nnz. *)

val mv2_into_range :
  t -> Vec.t -> Vec.t -> Vec.t -> Vec.t -> lo:int -> hi:int -> unit
(** [mv2_into_range a x0 x1 y0 y1 ~lo ~hi] computes rows [lo .. hi-1] of
    both [A x0] and [A x1] in a single CSR row walk. Bit-for-bit equal
    to two independent {!mv_into_range} calls — each output accumulates
    the same operation sequence — but touches [values]/[col_index] only
    once. All vectors must be pairwise-suitably distinct (no output may
    alias any input or another output). *)

val mv3_into_range :
  t -> Vec.t -> Vec.t -> Vec.t -> Vec.t -> Vec.t -> Vec.t ->
  lo:int -> hi:int -> unit
(** Three right-hand sides in one row walk; the randomization solver's
    order-3 recursion multiplies [Q'] into three U-vectors per
    iteration, which this serves with a third of the matrix traffic.
    Same contract as {!mv2_into_range}. *)

val mv_multi_into_range :
  t -> Vec.t array -> Vec.t array -> lo:int -> hi:int -> unit
(** [mv_multi_into_range a xs ys ~lo ~hi] writes rows [lo .. hi-1] of
    [A xs.(k)] into [ys.(k)] for every [k], walking each CSR row once.
    Dispatches to the specialized 1/2/3-vector kernels when they apply.
    Bit-for-bit equal to [Array.length xs] independent
    {!mv_into_range} calls. *)

type tridiag
(** A matrix proven tridiagonal: the three central diagonals stored as
    flat arrays, absent entries encoded as [0.] (sound because
    canonically built matrices never store exact zeros — see
    {!of_triplets}). Birth–death generators, e.g. the paper's ON–OFF
    family, always take this form after uniformization. *)

val tridiag_dim : tridiag -> int

val as_tridiagonal : t -> tridiag option
(** [Some] iff the matrix is square, every entry satisfies
    [|i - j| <= 1], and no stored value is exactly [0.] (a stored zero
    would be indistinguishable from an absent entry). O(nnz). *)

val tridiag_mv_into_range :
  tridiag -> Vec.t -> Vec.t -> lo:int -> hi:int -> unit
(** Structure-specialized row slice of [A x]: three streaming array
    reads per row, no column indirection. Bit-for-bit equal to
    {!mv_into_range} on the originating matrix (entries are visited in
    the same increasing-column order, absent entries skipped exactly as
    the CSR walk skips them). *)

val tridiag_mv_multi_into_range :
  tridiag -> Vec.t array -> Vec.t array -> lo:int -> hi:int -> unit
(** Fused multi-vector form of {!tridiag_mv_into_range}; the order-3
    case is hand-specialized. Same distinctness contract as
    {!mv_multi_into_range}. *)

val vm : Vec.t -> t -> Vec.t
(** [vm x a] is [x^T A]. *)

val scale : float -> t -> t
val add : t -> t -> t
val add_scaled_identity : float -> t -> t
(** [add_scaled_identity c a] is [A + cI] (square only). *)

val transpose : t -> t
val row_sums : t -> Vec.t
val map_values : (float -> float) -> t -> t
val iter : t -> (int -> int -> float -> unit) -> unit
val mean_nnz_per_row : t -> float
val pp : Format.formatter -> t -> unit
