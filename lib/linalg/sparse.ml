type t = {
  rows : int;
  cols : int;
  (* CSR: row i occupies [row_start.(i), row_start.(i+1)) in col_index and
     values; col_index is strictly increasing within a row. *)
  row_start : int array;
  col_index : int array;
  values : float array;
}

let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.values

let of_triplets ~rows ~cols triplets =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets: negative size";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: (%d,%d) out of %dx%d" i j rows
             cols))
    triplets;
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) ->
        let c = Int.compare i1 i2 in
        if c <> 0 then c else Int.compare j1 j2)
      triplets
  in
  (* Merge duplicates, drop exact zeros. *)
  let merged = ref [] and count = ref 0 in
  let flush (i, j, v) =
    (* mrm:ignore SRC001 -- sentinel: exact zeros carry no structure *)
    if v <> 0. then begin
      merged := (i, j, v) :: !merged;
      incr count
    end
  in
  let rec go pending = function
    | [] -> Option.iter flush pending
    | (i, j, v) :: rest -> begin
        match pending with
        | Some (pi, pj, pv) when Int.equal pi i && Int.equal pj j ->
            go (Some (i, j, pv +. v)) rest
        | Some p ->
            flush p;
            go (Some (i, j, v)) rest
        | None -> go (Some (i, j, v)) rest
      end
  in
  go None sorted;
  let entries = Array.of_list (List.rev !merged) in
  let n_entries = Array.length entries in
  let row_start = Array.make (rows + 1) 0 in
  Array.iter (fun (i, _, _) -> row_start.(i + 1) <- row_start.(i + 1) + 1)
    entries;
  for i = 0 to rows - 1 do
    row_start.(i + 1) <- row_start.(i + 1) + row_start.(i)
  done;
  let col_index = Array.make n_entries 0 in
  let values = Array.make n_entries 0. in
  Array.iteri
    (fun k (_, j, v) ->
      col_index.(k) <- j;
      values.(k) <- v)
    entries;
  { rows; cols; row_start; col_index; values }

let of_dense d =
  let triplets = ref [] in
  for i = Dense.rows d - 1 downto 0 do
    for j = Dense.cols d - 1 downto 0 do
      let v = Dense.get d i j in
      (* mrm:ignore SRC001 -- sentinel: exact zeros carry no structure *)
      if v <> 0. then triplets := (i, j, v) :: !triplets
    done
  done;
  of_triplets ~rows:(Dense.rows d) ~cols:(Dense.cols d) !triplets

let to_dense m =
  let d = Dense.zeros ~rows:m.rows ~cols:m.cols in
  for i = 0 to m.rows - 1 do
    for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      Dense.set d i m.col_index.(k) m.values.(k)
    done
  done;
  d

let identity n =
  {
    rows = n;
    cols = n;
    row_start = Array.init (n + 1) (fun i -> i);
    col_index = Array.init n (fun i -> i);
    values = Array.make n 1.;
  }

let diagonal d =
  let n = Array.length d in
  of_triplets ~rows:n ~cols:n
    (* mrm:ignore SRC001 -- sentinel: exact zeros carry no structure *)
    (List.filteri (fun _ (_, _, v) -> v <> 0.)
       (List.init n (fun i -> (i, i, d.(i)))))

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Sparse.get: index out of range";
  let lo = ref m.row_start.(i) and hi = ref (m.row_start.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_index.(mid) in
    if Int.equal c j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let check_mv_args ~name m x y ~lo ~hi =
  if Array.length x <> m.cols || Array.length y <> m.rows then
    invalid_arg (name ^ ": dimension mismatch");
  if x == y then invalid_arg (name ^ ": x and y must be distinct");
  if lo < 0 || hi > m.rows || lo > hi then
    invalid_arg (name ^ ": bad row range")

let mv_into_range_unchecked m x y ~lo ~hi =
  let row_start = m.row_start
  and col_index = m.col_index
  and values = m.values in
  for i = lo to hi - 1 do
    let acc = ref 0. in
    for k = row_start.(i) to row_start.(i + 1) - 1 do
      acc := !acc +. (values.(k) *. x.(col_index.(k)))
    done;
    y.(i) <- !acc
  done

let mv_into_range m x y ~lo ~hi =
  check_mv_args ~name:"Sparse.mv_into_range" m x y ~lo ~hi;
  mv_into_range_unchecked m x y ~lo ~hi

let mv_into m x y =
  check_mv_args ~name:"Sparse.mv_into" m x y ~lo:0 ~hi:m.rows;
  mv_into_range_unchecked m x y ~lo:0 ~hi:m.rows

let row_offsets m = Array.copy m.row_start

(* ------------------------------------------------------------------ *)
(* Fused multi-vector products: one CSR row walk serving several
   right-hand sides at once. The randomization recursion multiplies the
   same matrix into [order] vectors every iteration; walking the row
   once and touching values/col_index a single time roughly divides the
   memory traffic of the sweep by the vector count. Each output accumulates
   exactly the sequence of operations an independent [mv_into_range]
   would perform, so the fused kernels are bit-for-bit identical to
   repeated single-vector calls. *)

let check_mv_multi_args ~name m xs ys ~lo ~hi =
  let count = Array.length xs in
  if count <> Array.length ys then
    invalid_arg (name ^ ": xs/ys count mismatch");
  for v = 0 to count - 1 do
    if Array.length xs.(v) <> m.cols || Array.length ys.(v) <> m.rows then
      invalid_arg (name ^ ": dimension mismatch")
  done;
  for v = 0 to count - 1 do
    for w = 0 to count - 1 do
      if xs.(w) == ys.(v) then
        invalid_arg (name ^ ": inputs and outputs must be distinct");
      if w < v && ys.(w) == ys.(v) then
        invalid_arg (name ^ ": outputs must be distinct")
    done
  done;
  if lo < 0 || hi > m.rows || lo > hi then
    invalid_arg (name ^ ": bad row range")

let mv2_into_range_unchecked m x0 x1 y0 y1 ~lo ~hi =
  let row_start = m.row_start
  and col_index = m.col_index
  and values = m.values in
  for i = lo to hi - 1 do
    let a0 = ref 0. and a1 = ref 0. in
    for k = row_start.(i) to row_start.(i + 1) - 1 do
      let v = values.(k) and c = col_index.(k) in
      a0 := !a0 +. (v *. x0.(c));
      a1 := !a1 +. (v *. x1.(c))
    done;
    y0.(i) <- !a0;
    y1.(i) <- !a1
  done

let mv3_into_range_unchecked m x0 x1 x2 y0 y1 y2 ~lo ~hi =
  let row_start = m.row_start
  and col_index = m.col_index
  and values = m.values in
  for i = lo to hi - 1 do
    let a0 = ref 0. and a1 = ref 0. and a2 = ref 0. in
    for k = row_start.(i) to row_start.(i + 1) - 1 do
      let v = values.(k) and c = col_index.(k) in
      a0 := !a0 +. (v *. x0.(c));
      a1 := !a1 +. (v *. x1.(c));
      a2 := !a2 +. (v *. x2.(c))
    done;
    y0.(i) <- !a0;
    y1.(i) <- !a1;
    y2.(i) <- !a2
  done

let mv2_into_range m x0 x1 y0 y1 ~lo ~hi =
  check_mv_multi_args ~name:"Sparse.mv2_into_range" m [| x0; x1 |]
    [| y0; y1 |] ~lo ~hi;
  mv2_into_range_unchecked m x0 x1 y0 y1 ~lo ~hi

let mv3_into_range m x0 x1 x2 y0 y1 y2 ~lo ~hi =
  check_mv_multi_args ~name:"Sparse.mv3_into_range" m [| x0; x1; x2 |]
    [| y0; y1; y2 |] ~lo ~hi;
  mv3_into_range_unchecked m x0 x1 x2 y0 y1 y2 ~lo ~hi

let mv_multi_into_range m xs ys ~lo ~hi =
  check_mv_multi_args ~name:"Sparse.mv_multi_into_range" m xs ys ~lo ~hi;
  match Array.length xs with
  | 0 -> ()
  | 1 -> mv_into_range_unchecked m xs.(0) ys.(0) ~lo ~hi
  | 2 -> mv2_into_range_unchecked m xs.(0) xs.(1) ys.(0) ys.(1) ~lo ~hi
  | 3 ->
      mv3_into_range_unchecked m xs.(0) xs.(1) xs.(2) ys.(0) ys.(1) ys.(2)
        ~lo ~hi
  | count ->
      let row_start = m.row_start
      and col_index = m.col_index
      and values = m.values in
      let accs = Array.make count 0. in
      for i = lo to hi - 1 do
        Array.fill accs 0 count 0.;
        for k = row_start.(i) to row_start.(i + 1) - 1 do
          let v = values.(k) and c = col_index.(k) in
          for s = 0 to count - 1 do
            accs.(s) <- accs.(s) +. (v *. xs.(s).(c))
          done
        done;
        for s = 0 to count - 1 do
          ys.(s).(i) <- accs.(s)
        done
      done

(* ------------------------------------------------------------------ *)
(* Tridiagonal fast path. The ON-OFF family (and every birth-death
   generator) has all entries on the three central diagonals; storing
   them as three flat arrays removes the col_index indirection and
   turns the row walk into streaming reads of x.(i-1), x.(i), x.(i+1).
   A zero slot encodes "entry absent": valid because [of_triplets]
   (hence every canonically built matrix) never stores an exact zero,
   and [as_tridiagonal] refuses matrices that do. The per-row
   accumulation visits present entries in increasing column order,
   exactly like the CSR walk, so results are bit-for-bit identical. *)

type tridiag = {
  t_dim : int;
  t_lower : float array;  (* t_lower.(i) = entry (i, i-1); 0. = absent *)
  t_diag : float array;  (* t_diag.(i) = entry (i, i) *)
  t_upper : float array;  (* t_upper.(i) = entry (i, i+1) *)
}

let tridiag_dim td = td.t_dim

let as_tridiagonal m =
  if not (Int.equal m.rows m.cols) then None
  else begin
    let n = m.rows in
    let t_lower = Array.make n 0.
    and t_diag = Array.make n 0.
    and t_upper = Array.make n 0. in
    let scan () =
      for i = 0 to n - 1 do
        for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
          let j = m.col_index.(k) and v = m.values.(k) in
          (* A stored exact zero would read as "absent" in the band
             arrays; impossible via of_triplets, but refuse defensively. *)
          (* mrm:ignore SRC001 -- zero is the absence encoding of the band *)
          if v = 0. then raise_notrace Exit
          else if Int.equal j (i - 1) then t_lower.(i) <- v
          else if Int.equal j i then t_diag.(i) <- v
          else if Int.equal j (i + 1) then t_upper.(i) <- v
          else raise_notrace Exit
        done
      done
    in
    match scan () with
    | () -> Some { t_dim = n; t_lower; t_diag; t_upper }
    | exception Exit -> None
  end

let check_tridiag_args ~name td xs ys ~lo ~hi =
  let count = Array.length xs in
  if count <> Array.length ys then
    invalid_arg (name ^ ": xs/ys count mismatch");
  for v = 0 to count - 1 do
    if
      Array.length xs.(v) <> td.t_dim || Array.length ys.(v) <> td.t_dim
    then invalid_arg (name ^ ": dimension mismatch")
  done;
  for v = 0 to count - 1 do
    for w = 0 to count - 1 do
      if xs.(w) == ys.(v) then
        invalid_arg (name ^ ": inputs and outputs must be distinct");
      if w < v && ys.(w) == ys.(v) then
        invalid_arg (name ^ ": outputs must be distinct")
    done
  done;
  if lo < 0 || hi > td.t_dim || lo > hi then
    invalid_arg (name ^ ": bad row range")

let tridiag_mv_into_range_unchecked td x y ~lo ~hi =
  let l = td.t_lower and d = td.t_diag and u = td.t_upper in
  for i = lo to hi - 1 do
    let acc = ref 0. in
    let li = l.(i) in
    (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
    if li <> 0. then acc := !acc +. (li *. x.(i - 1));
    let di = d.(i) in
    (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
    if di <> 0. then acc := !acc +. (di *. x.(i));
    let ui = u.(i) in
    (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
    if ui <> 0. then acc := !acc +. (ui *. x.(i + 1));
    y.(i) <- !acc
  done

let tridiag_mv3_into_range_unchecked td x0 x1 x2 y0 y1 y2 ~lo ~hi =
  let l = td.t_lower and d = td.t_diag and u = td.t_upper in
  for i = lo to hi - 1 do
    let a0 = ref 0. and a1 = ref 0. and a2 = ref 0. in
    let li = l.(i) in
    (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
    if li <> 0. then begin
      let c = i - 1 in
      a0 := !a0 +. (li *. x0.(c));
      a1 := !a1 +. (li *. x1.(c));
      a2 := !a2 +. (li *. x2.(c))
    end;
    let di = d.(i) in
    (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
    if di <> 0. then begin
      a0 := !a0 +. (di *. x0.(i));
      a1 := !a1 +. (di *. x1.(i));
      a2 := !a2 +. (di *. x2.(i))
    end;
    let ui = u.(i) in
    (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
    if ui <> 0. then begin
      let c = i + 1 in
      a0 := !a0 +. (ui *. x0.(c));
      a1 := !a1 +. (ui *. x1.(c));
      a2 := !a2 +. (ui *. x2.(c))
    end;
    y0.(i) <- !a0;
    y1.(i) <- !a1;
    y2.(i) <- !a2
  done

let tridiag_mv_into_range td x y ~lo ~hi =
  check_tridiag_args ~name:"Sparse.tridiag_mv_into_range" td [| x |] [| y |]
    ~lo ~hi;
  tridiag_mv_into_range_unchecked td x y ~lo ~hi

let tridiag_mv_multi_into_range td xs ys ~lo ~hi =
  check_tridiag_args ~name:"Sparse.tridiag_mv_multi_into_range" td xs ys ~lo
    ~hi;
  match Array.length xs with
  | 0 -> ()
  | 1 -> tridiag_mv_into_range_unchecked td xs.(0) ys.(0) ~lo ~hi
  | 3 ->
      tridiag_mv3_into_range_unchecked td xs.(0) xs.(1) xs.(2) ys.(0) ys.(1)
        ys.(2) ~lo ~hi
  | count ->
      let l = td.t_lower and d = td.t_diag and u = td.t_upper in
      for i = lo to hi - 1 do
        let li = l.(i) and di = d.(i) and ui = u.(i) in
        for s = 0 to count - 1 do
          let x = xs.(s) in
          let acc = ref 0. in
          (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
          if li <> 0. then acc := !acc +. (li *. x.(i - 1));
          (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
          if di <> 0. then acc := !acc +. (di *. x.(i));
          (* mrm:ignore SRC001 -- zero encodes an absent band entry *)
          if ui <> 0. then acc := !acc +. (ui *. x.(i + 1));
          ys.(s).(i) <- !acc
        done
      done

let mv m x =
  let y = Array.make m.rows 0. in
  mv_into m x y;
  y

let vm x m =
  if Array.length x <> m.rows then invalid_arg "Sparse.vm: dimension mismatch";
  let y = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    (* mrm:ignore SRC001 -- sentinel: skip exactly-zero vector entries *)
    if xi <> 0. then
      for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
        y.(m.col_index.(k)) <- y.(m.col_index.(k)) +. (xi *. m.values.(k))
      done
  done;
  y

let map_values f m =
  (* [f 0.] is not required to be 0; rebuild through triplets to stay
     canonical when f introduces zeros. *)
  let triplets = ref [] in
  for i = m.rows - 1 downto 0 do
    for k = m.row_start.(i + 1) - 1 downto m.row_start.(i) do
      triplets := (i, m.col_index.(k), f m.values.(k)) :: !triplets
    done
  done;
  of_triplets ~rows:m.rows ~cols:m.cols !triplets

let scale alpha m =
  (* mrm:ignore SRC001 -- sentinel: scaling by exactly zero empties the
     structure *)
  if alpha = 0. then of_triplets ~rows:m.rows ~cols:m.cols []
  else { m with values = Array.map (fun v -> alpha *. v) m.values }

let iter m f =
  for i = 0 to m.rows - 1 do
    for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      f i m.col_index.(k) m.values.(k)
    done
  done

let triplets_of m =
  let acc = ref [] in
  iter m (fun i j v -> acc := (i, j, v) :: !acc);
  !acc

let add a b =
  if not (Int.equal a.rows b.rows && Int.equal a.cols b.cols) then
    invalid_arg "Sparse.add: shape mismatch";
  of_triplets ~rows:a.rows ~cols:a.cols (triplets_of a @ triplets_of b)

let add_scaled_identity c a =
  if not (Int.equal a.rows a.cols) then
    invalid_arg "Sparse.add_scaled_identity: non-square matrix";
  let diag = List.init a.rows (fun i -> (i, i, c)) in
  of_triplets ~rows:a.rows ~cols:a.cols (diag @ triplets_of a)

let transpose a =
  of_triplets ~rows:a.cols ~cols:a.rows
    (List.map (fun (i, j, v) -> (j, i, v)) (triplets_of a))

let row_sums m =
  let sums = Array.make m.rows 0. in
  iter m (fun i _ v -> sums.(i) <- sums.(i) +. v);
  sums

let mean_nnz_per_row m =
  if m.rows = 0 then 0. else float_of_int (nnz m) /. float_of_int m.rows

let pp ppf m =
  Format.fprintf ppf "@[<v>sparse %dx%d (%d nnz)" m.rows m.cols (nnz m);
  if nnz m <= 64 then
    iter m (fun i j v -> Format.fprintf ppf "@,(%d,%d) = %g" i j v);
  Format.fprintf ppf "@]"
