(** Dense matrix exponential by scaling-and-squaring with Padé(13)
    approximation (Higham 2005, fixed order).

    Used as an independent oracle for CTMC transient solutions
    ([p(t) = pi e^(Qt)]) in the test suite, and for small-model validation
    of uniformization. O(n^3); intended for n up to a few hundred. *)

val expm : Dense.t -> Dense.t
(** [expm a] is [e^A]. @raise Invalid_argument on non-square input. *)

val expm_action : Dense.t -> Vec.t -> Vec.t
(** [expm_action a v = e^A v] (currently via {!expm}; a convenience). *)
