type t = {
  (* Combined L (strict lower, unit diagonal) and U (upper) factors. *)
  lu : float array array;
  perm : int array;
  sign : float;
  n : int;
}

exception Singular of int

let factorize a =
  let n = Dense.rows a in
  if not (Int.equal (Dense.cols a) n) then
    invalid_arg "Lu.factorize: non-square matrix";
  let lu = Dense.to_arrays a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k below the diagonal. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if abs_float lu.(i).(k) > abs_float lu.(!pivot_row).(k) then
        pivot_row := i
    done;
    if not (Int.equal !pivot_row k) then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot_row);
      lu.(!pivot_row) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tp;
      sign := -. !sign
    end;
    let pivot = lu.(k).(k) in
    (* mrm:ignore SRC001 -- sentinel: an exactly-zero pivot after partial
       pivoting is structural singularity *)
    if pivot = 0. then raise (Singular k);
    for i = k + 1 to n - 1 do
      let factor = lu.(i).(k) /. pivot in
      lu.(i).(k) <- factor;
      (* mrm:ignore SRC001 -- sentinel: skip exactly-zero elimination factors *)
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          lu.(i).(j) <- lu.(i).(j) -. (factor *. lu.(k).(j))
        done
    done
  done;
  { lu; perm; sign = !sign; n }

let solve f b =
  if Array.length b <> f.n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.init f.n (fun i -> b.(f.perm.(i))) in
  (* Forward substitution with the unit lower factor. *)
  for i = 1 to f.n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (f.lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with the upper factor. *)
  for i = f.n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to f.n - 1 do
      acc := !acc -. (f.lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. f.lu.(i).(i)
  done;
  x

let solve_matrix f b =
  if not (Int.equal (Dense.rows b) f.n) then
    invalid_arg "Lu.solve_matrix: dimension mismatch";
  let cols = Dense.cols b in
  let out = Dense.zeros ~rows:f.n ~cols in
  for j = 0 to cols - 1 do
    let x = solve f (Dense.col b j) in
    for i = 0 to f.n - 1 do
      Dense.set out i j x.(i)
    done
  done;
  out

let det f =
  let acc = ref f.sign in
  for i = 0 to f.n - 1 do
    acc := !acc *. f.lu.(i).(i)
  done;
  !acc

let inverse f = solve_matrix f (Dense.identity f.n)
let solve_system a b = solve (factorize a) b
