(** LU factorization with partial pivoting, backing the implicit ODE steps
    and the Gaver–Stehfest transform-domain solver. *)

type t
(** A factorization [P A = L U] of a square matrix. *)

exception Singular of int
(** Raised (with the offending pivot column) when a pivot is exactly 0. *)

val factorize : Dense.t -> t
(** @raise Invalid_argument on non-square input.
    @raise Singular on exactly singular input. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b] for [x]. *)

val solve_matrix : t -> Dense.t -> Dense.t
(** Solve [A X = B] column-by-column. *)

val det : t -> float
val inverse : t -> Dense.t

val solve_system : Dense.t -> Vec.t -> Vec.t
(** One-shot [factorize]+[solve]. *)
