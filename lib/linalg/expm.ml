(* Scaling and squaring with the order-13 Pade approximant (coefficients
   from Higham, "The Scaling and Squaring Method for the Matrix Exponential
   Revisited", 2005). A fixed order keeps the code small; the scaling step
   handles all magnitudes. *)

let pade13_coefficients =
  [| 64764752532480000.; 32382376266240000.; 7771770303897600.;
     1187353796428800.; 129060195264000.; 10559470521600.; 670442572800.;
     33522128640.; 1323241920.; 40840800.; 960960.; 16380.; 182.; 1. |]

let expm a =
  let n = Dense.rows a in
  if not (Int.equal (Dense.cols a) n) then
    invalid_arg "Expm.expm: non-square matrix";
  if n = 0 then Dense.identity 0
  else begin
    (* Scale so that the 1-norm-ish bound is below the Pade13 radius. *)
    let norm = Dense.norm_inf a in
    let theta13 = 5.371920351148152 in
    let squarings =
      if norm <= theta13 then 0
      else int_of_float (ceil (log (norm /. theta13) /. log 2.))
    in
    let scaled = Dense.scale (1. /. (2. ** float_of_int squarings)) a in
    let b = pade13_coefficients in
    let a2 = Dense.mul scaled scaled in
    let a4 = Dense.mul a2 a2 in
    let a6 = Dense.mul a2 a4 in
    let eye = Dense.identity n in
    (* u = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I) *)
    let inner_u =
      Dense.add
        (Dense.mul a6
           (Dense.add
              (Dense.add (Dense.scale b.(13) a6) (Dense.scale b.(11) a4))
              (Dense.scale b.(9) a2)))
        (Dense.add
           (Dense.add (Dense.scale b.(7) a6) (Dense.scale b.(5) a4))
           (Dense.add (Dense.scale b.(3) a2) (Dense.scale b.(1) eye)))
    in
    let u = Dense.mul scaled inner_u in
    (* v = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I *)
    let v =
      Dense.add
        (Dense.mul a6
           (Dense.add
              (Dense.add (Dense.scale b.(12) a6) (Dense.scale b.(10) a4))
              (Dense.scale b.(8) a2)))
        (Dense.add
           (Dense.add (Dense.scale b.(6) a6) (Dense.scale b.(4) a4))
           (Dense.add (Dense.scale b.(2) a2) (Dense.scale b.(0) eye)))
    in
    (* (V - U) X = (V + U). *)
    let factorization = Lu.factorize (Dense.sub v u) in
    let result = ref (Lu.solve_matrix factorization (Dense.add v u)) in
    for _ = 1 to squarings do
      result := Dense.mul !result !result
    done;
    !result
  end

let expm_action a v = Dense.mv (expm a) v
