(* Householder reduction to Hessenberg form + Francis double-shift QR
   (the classical EISPACK/Numerical-Recipes "hqr" scheme, 0-indexed). *)

let hessenberg a =
  let n = Dense.rows a in
  if not (Int.equal (Dense.cols a) n) then
    invalid_arg "Eigen.hessenberg: non-square matrix";
  let m = Dense.to_arrays a in
  for k = 0 to n - 3 do
    (* Householder vector annihilating column k below row k+1. *)
    let scale = ref 0. in
    for i = k + 1 to n - 1 do
      scale := !scale +. abs_float m.(i).(k)
    done;
    if !scale > 0. then begin
      let v = Array.make n 0. in
      let norm2 = ref 0. in
      for i = k + 1 to n - 1 do
        v.(i) <- m.(i).(k) /. !scale;
        norm2 := !norm2 +. (v.(i) *. v.(i))
      done;
      let alpha =
        if v.(k + 1) >= 0. then -.sqrt !norm2 else sqrt !norm2
      in
      let beta = !norm2 -. (v.(k + 1) *. alpha) in
      if beta > 0. then begin
        v.(k + 1) <- v.(k + 1) -. alpha;
        (* Apply H = I - v v^T / beta from the left: M := H M. *)
        for j = 0 to n - 1 do
          let dot = ref 0. in
          for i = k + 1 to n - 1 do
            dot := !dot +. (v.(i) *. m.(i).(j))
          done;
          let factor = !dot /. beta in
          for i = k + 1 to n - 1 do
            m.(i).(j) <- m.(i).(j) -. (factor *. v.(i))
          done
        done;
        (* And from the right: M := M H. *)
        for i = 0 to n - 1 do
          let dot = ref 0. in
          for j = k + 1 to n - 1 do
            dot := !dot +. (m.(i).(j) *. v.(j))
          done;
          let factor = !dot /. beta in
          for j = k + 1 to n - 1 do
            m.(i).(j) <- m.(i).(j) -. (factor *. v.(j))
          done
        done
      end
    end;
    (* Clean the annihilated entries exactly. *)
    for i = k + 2 to n - 1 do
      m.(i).(k) <- 0.
    done
  done;
  Dense.of_arrays m

let sign_with magnitude reference =
  if reference >= 0. then abs_float magnitude else -.abs_float magnitude

let eigenvalues matrix =
  let n = Dense.rows matrix in
  if not (Int.equal (Dense.cols matrix) n) then
    invalid_arg "Eigen.eigenvalues: non-square matrix";
  if n = 0 then [||]
  else begin
    let a = Dense.to_arrays (hessenberg matrix) in
    let wr = Array.make n 0. and wi = Array.make n 0. in
    let anorm = ref 0. in
    for i = 0 to n - 1 do
      for j = max 0 (i - 1) to n - 1 do
        anorm := !anorm +. abs_float a.(i).(j)
      done
    done;
    let eps = epsilon_float in
    let t = ref 0. in
    let nn = ref (n - 1) in
    while !nn >= 0 do
      let its = ref 0 in
      let finished_block = ref false in
      while not !finished_block do
        (* Find a negligible subdiagonal element. *)
        let l = ref 0 in
        (try
           for candidate = !nn downto 1 do
             let s =
               abs_float a.(candidate - 1).(candidate - 1)
               +. abs_float a.(candidate).(candidate)
             in
             (* mrm:ignore SRC001 -- sentinel: guard the exactly-zero scale
                before dividing *)
             let s = if s = 0. then !anorm else s in
             if abs_float a.(candidate).(candidate - 1) <= eps *. s then begin
               a.(candidate).(candidate - 1) <- 0.;
               l := candidate;
               raise Exit
             end
           done
         with Exit -> ());
        let l = !l in
        let x = a.(!nn).(!nn) in
        if Int.equal l !nn then begin
          (* One real root. *)
          wr.(!nn) <- x +. !t;
          wi.(!nn) <- 0.;
          decr nn;
          finished_block := true
        end
        else begin
          let y = a.(!nn - 1).(!nn - 1) in
          let w = a.(!nn).(!nn - 1) *. a.(!nn - 1).(!nn) in
          if l = !nn - 1 then begin
            (* A 2x2 block: two roots. *)
            let p = 0.5 *. (y -. x) in
            let q = (p *. p) +. w in
            let z = sqrt (abs_float q) in
            let x = x +. !t in
            if q >= 0. then begin
              let z = p +. sign_with z p in
              wr.(!nn - 1) <- x +. z;
              (* mrm:ignore SRC001 -- sentinel: division guard on exactly-zero z *)
              wr.(!nn) <- (if z <> 0. then x -. (w /. z) else x +. z);
              wi.(!nn - 1) <- 0.;
              wi.(!nn) <- 0.
            end
            else begin
              wr.(!nn - 1) <- x +. p;
              wr.(!nn) <- x +. p;
              wi.(!nn - 1) <- -.z;
              wi.(!nn) <- z
            end;
            nn := !nn - 2;
            finished_block := true
          end
          else begin
            (* Double-shift QR sweep. *)
            if !its = 40 then
              failwith "Eigen.eigenvalues: QR iteration did not converge";
            let x = ref x and y = ref y and w = ref w in
            if !its = 10 || !its = 20 || !its = 30 then begin
              (* Exceptional shift. *)
              t := !t +. !x;
              for i = 0 to !nn do
                a.(i).(i) <- a.(i).(i) -. !x
              done;
              let s =
                abs_float a.(!nn).(!nn - 1)
                +. abs_float a.(!nn - 1).(!nn - 2)
              in
              x := 0.75 *. s;
              y := !x;
              w := -0.4375 *. s *. s
            end;
            incr its;
            let p = ref 0. and q = ref 0. and r = ref 0. in
            (* Find two consecutive small subdiagonals. *)
            let m = ref (!nn - 2) in
            (try
               while !m >= l do
                 let z = a.(!m).(!m) in
                 let rr = !x -. z in
                 let ss = !y -. z in
                 p :=
                   (((rr *. ss) -. !w) /. a.(!m + 1).(!m)) +. a.(!m).(!m + 1);
                 q := a.(!m + 1).(!m + 1) -. z -. rr -. ss;
                 r := a.(!m + 2).(!m + 1);
                 let scale = abs_float !p +. abs_float !q +. abs_float !r in
                 p := !p /. scale;
                 q := !q /. scale;
                 r := !r /. scale;
                 if Int.equal !m l then raise Exit;
                 let u =
                   abs_float a.(!m).(!m - 1)
                   *. (abs_float !q +. abs_float !r)
                 in
                 let v =
                   abs_float !p
                   *. (abs_float a.(!m - 1).(!m - 1)
                      +. abs_float z
                      +. abs_float a.(!m + 1).(!m + 1))
                 in
                 if u <= eps *. v then raise Exit;
                 decr m
               done
             with Exit -> ());
            let m = !m in
            for i = m + 2 to !nn do
              a.(i).(i - 2) <- 0.
            done;
            for i = m + 3 to !nn do
              a.(i).(i - 3) <- 0.
            done;
            for k = m to !nn - 1 do
              if not (Int.equal k m) then begin
                p := a.(k).(k - 1);
                q := a.(k + 1).(k - 1);
                r := (if Int.equal k (!nn - 1) then 0. else a.(k + 2).(k - 1));
                let scale = abs_float !p +. abs_float !q +. abs_float !r in
                x := scale;
                (* mrm:ignore SRC001 -- sentinel: division guard on exactly-zero
                   scale *)
                if scale <> 0. then begin
                  p := !p /. scale;
                  q := !q /. scale;
                  r := !r /. scale
                end
              end;
              let s =
                sign_with (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p
              in
              (* mrm:ignore SRC001 -- sentinel: a Householder step with exactly
                 zero norm is a no-op *)
              if s <> 0. then begin
                if Int.equal k m then begin
                  if not (Int.equal l m) then a.(k).(k - 1) <- -.a.(k).(k - 1)
                end
                else a.(k).(k - 1) <- -.s *. !x;
                p := !p +. s;
                x := !p /. s;
                y := !q /. s;
                let z = !r /. s in
                q := !q /. !p;
                r := !r /. !p;
                (* Row modification. *)
                for j = k to !nn do
                  let pp =
                    a.(k).(j) +. (!q *. a.(k + 1).(j))
                    +. (if k <> !nn - 1 then !r *. a.(k + 2).(j) else 0.)
                  in
                  a.(k).(j) <- a.(k).(j) -. (pp *. !x);
                  a.(k + 1).(j) <- a.(k + 1).(j) -. (pp *. !y);
                  if k <> !nn - 1 then
                    a.(k + 2).(j) <- a.(k + 2).(j) -. (pp *. z)
                done;
                (* Column modification. *)
                let mmin = min !nn (k + 3) in
                for i = l to mmin do
                  let pp =
                    (!x *. a.(i).(k)) +. (!y *. a.(i).(k + 1))
                    +. (if k <> !nn - 1 then z *. a.(i).(k + 2) else 0.)
                  in
                  a.(i).(k) <- a.(i).(k) -. pp;
                  a.(i).(k + 1) <- a.(i).(k + 1) -. (pp *. !q);
                  if k <> !nn - 1 then
                    a.(i).(k + 2) <- a.(i).(k + 2) -. (pp *. !r)
                done
              end
            done
          end
        end
      done
    done;
    Array.init n (fun i -> { Complex.re = wr.(i); im = wi.(i) })
  end
