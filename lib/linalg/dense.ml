type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols x =
  if rows < 0 || cols < 0 then invalid_arg "Dense.create: negative size";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros ~rows ~cols = create ~rows ~cols 0.

let identity n =
  let m = zeros ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.
  done;
  m

let init ~rows ~cols f =
  {
    rows;
    cols;
    data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols));
  }

let of_arrays a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Dense.of_arrays: ragged rows")
    a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let rows m = m.rows
let cols m = m.cols

let check_index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Dense: index (%d,%d) out of %dx%d" i j m.rows m.cols)

let get m i j =
  check_index m i j;
  m.data.((i * m.cols) + j)

let set m i j x =
  check_index m i j;
  m.data.((i * m.cols) + j) <- x

let to_arrays m =
  Array.init m.rows (fun i ->
      Array.init m.cols (fun j -> m.data.((i * m.cols) + j)))

let copy m = { m with data = Array.copy m.data }

let diagonal d =
  let n = Array.length d in
  let m = zeros ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- d.(i)
  done;
  m

let check_same_shape name a b =
  if not (Int.equal a.rows b.rows && Int.equal a.cols b.cols) then
    invalid_arg
      (Printf.sprintf "Dense.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same_shape "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same_shape "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale alpha a = { a with data = Array.map (fun x -> alpha *. x) a.data }

let mul a b =
  if not (Int.equal a.cols b.rows) then
    invalid_arg
      (Printf.sprintf "Dense.mul: %dx%d by %dx%d" a.rows a.cols b.rows b.cols);
  let c = zeros ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      (* mrm:ignore SRC001 -- sentinel: exact-zero skip in the inner product *)
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mv a x =
  if a.cols <> Array.length x then
    invalid_arg "Dense.mv: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.((i * a.cols) + j) *. x.(j))
      done;
      !acc)

let vm x a =
  if a.rows <> Array.length x then
    invalid_arg "Dense.vm: dimension mismatch";
  Array.init a.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to a.rows - 1 do
        acc := !acc +. (x.(i) *. a.data.((i * a.cols) + j))
      done;
      !acc)

let transpose a = init ~rows:a.cols ~cols:a.rows (fun i j -> get a j i)

let trace a =
  let n = Int.min a.rows a.cols in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. a.data.((i * a.cols) + i)
  done;
  !acc

let norm_inf a =
  let worst = ref 0. in
  for i = 0 to a.rows - 1 do
    let acc = ref 0. in
    for j = 0 to a.cols - 1 do
      acc := !acc +. abs_float a.data.((i * a.cols) + j)
    done;
    worst := Float.max !worst !acc
  done;
  !worst

let row a i = Array.init a.cols (fun j -> get a i j)
let col a j = Array.init a.rows (fun i -> get a i j)

let approx_equal ?(tol = 1e-9) a b =
  Int.equal a.rows b.rows && Int.equal a.cols b.cols
  && Vec.approx_equal ~tol a.data b.data

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%10.4g" (get a i j)
    done;
    Format.fprintf ppf "]";
    if i < a.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
