(** Symmetric tridiagonal eigenproblem (implicit-shift QL).

    This is the computational heart of the Golub–Welsch step in the
    moment-based distribution bounds: Gauss quadrature nodes are the
    eigenvalues of the Jacobi matrix and the weights come from the first
    components of its eigenvectors. *)

type eig = {
  eigenvalues : float array;  (** ascending *)
  first_components : float array;
      (** first component of each (normalized) eigenvector, aligned with
          [eigenvalues] *)
}

val eigen : diag:float array -> offdiag:float array -> eig
(** [eigen ~diag ~offdiag] solves the symmetric tridiagonal eigenproblem
    with diagonal [diag] (length n) and sub/super-diagonal [offdiag]
    (length n-1).
    @raise Invalid_argument on inconsistent lengths.
    @raise Failure if the QL iteration fails to converge. *)

val eigenvalues : diag:float array -> offdiag:float array -> float array
(** Eigenvalues only (same algorithm). *)
