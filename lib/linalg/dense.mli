(** Dense row-major matrices. Sizes are validated on every operation; these
    matrices back the small-model solvers (ODE, transform inversion) while
    {!Sparse} backs the large randomization runs. *)

type t

val create : rows:int -> cols:int -> float -> t
val zeros : rows:int -> cols:int -> t
val identity : int -> t
val init : rows:int -> cols:int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged input. *)

val to_arrays : t -> float array array
val copy : t -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val diagonal : float array -> t
(** Square matrix with the given diagonal. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mv : t -> Vec.t -> Vec.t
(** Matrix–vector product [A x]. *)

val vm : Vec.t -> t -> Vec.t
(** Row-vector–matrix product [x^T A]. *)

val transpose : t -> t
val trace : t -> float
val norm_inf : t -> float
(** Maximum absolute row sum. *)

val row : t -> int -> Vec.t
val col : t -> int -> Vec.t

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
