(** Precomputed row partitions for the sharded kernels.

    A partition splits [0 .. rows-1] into contiguous ranges, one unit
    of work each. For sparse mat-vec the ranges are balanced by
    nonzero count — on the paper's birth–death generators rows are
    near-uniform, but nothing in the engine assumes that — so every
    domain streams a comparable number of multiply-adds per region.
    Built once per solve and reused for all [G = O(qt)] iterations. *)

type t

val ranges : t -> (int * int) array
(** The [[lo, hi)] ranges, in row order; they tile [0 .. rows-1]
    exactly. Ranges may be empty when [parts > rows]. *)

val parts : t -> int
val rows : t -> int

val uniform : parts:int -> rows:int -> t
(** Equal-width ranges; for elementwise/reduction kernels with no
    matrix in sight. @raise Invalid_argument when [parts < 1] or
    [rows < 0]. *)

val by_nnz : parts:int -> Mrm_linalg.Sparse.t -> t
(** Ranges holding approximately equal nonzero counts, computed from
    the CSR row offsets: part [k] starts at the first row whose
    cumulative nnz reaches [k/parts] of the total. Empty and dense
    rows are both handled; for an empty matrix this degrades to
    {!uniform}. @raise Invalid_argument when [parts < 1]. *)

val of_ranges : rows:int -> (int * int) array -> t
(** Wrap explicit ranges with {e no} validation — for custom layouts
    and for exercising the dynamic race checker. The kernels verify
    disjointness and coverage under [MRM2_RACECHECK=1]
    ({!Racecheck.check_ranges}); without the checker, overlapping
    ranges silently race. @raise Invalid_argument when [rows < 0]. *)

val of_pool_for : jobs:int -> Mrm_linalg.Sparse.t -> t
(** The partition the dynamically scheduled kernels use: {!by_nnz}
    with [4 * jobs] parts (capped at the row count) — enough slack for
    the dynamic scheduler to absorb load imbalance without measurable
    dispatch overhead. *)

val pinned : jobs:int -> Mrm_linalg.Sparse.t -> t
(** The partition the persistent-chunk sweep uses: {!by_nnz} with
    {e exactly} [jobs] parts, one per pool party, even when
    [jobs > rows] (the surplus ranges are empty but their parties still
    take part in every barrier). No 4x slack — a pinned range is never
    rescheduled, so balance comes entirely from the nnz split.
    @raise Invalid_argument when [jobs < 1]. *)

val pp : Format.formatter -> t -> unit
