module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

(* ------------------------------------------------------------------ *)
(* Structure-specialized mat-vec dispatch. Detection runs once per
   solve; the per-range fused product then goes through the
   tridiagonal band kernel when the matrix is a birth-death/ON-OFF
   generator and the generic CSR kernel otherwise. Both sides are
   bit-for-bit equal to repeated [Sparse.mv_into_range] (see
   Mrm_linalg.Sparse). *)

type structure =
  | Csr of Sparse.t
  | Tridiagonal of Sparse.tridiag

let detect matrix =
  match Sparse.as_tridiagonal matrix with
  | Some td -> Tridiagonal td
  | None -> Csr matrix

let structure_kind = function
  | Csr _ -> "csr"
  | Tridiagonal _ -> "tridiagonal"

let mv_fused structure xs ys ~lo ~hi =
  match structure with
  | Csr matrix -> Sparse.mv_multi_into_range matrix xs ys ~lo ~hi
  | Tridiagonal td -> Sparse.tridiag_mv_multi_into_range td xs ys ~lo ~hi

let for_ranges pool partition f =
  let ranges = Partition.ranges partition in
  if Racecheck.enabled () then
    Racecheck.check_ranges ~what:"Kernel.for_ranges"
      ~rows:(Partition.rows partition) ranges;
  Pool.run pool (Array.length ranges) (fun k ->
      let lo, hi = ranges.(k) in
      if hi > lo then f lo hi)

let sweep pool partition ~rounds body =
  if rounds > 0 then begin
    let ranges = Partition.ranges partition in
    if Racecheck.enabled () then
      Racecheck.check_ranges ~what:"Kernel.sweep"
        ~rows:(Partition.rows partition) ranges;
    let run_range ~round k =
      let lo, hi = ranges.(k) in
      if hi > lo then body ~round ~lo ~hi
    in
    let pinned =
      match pool with
      | Some pool ->
          Pool.run_pinned pool ~parties:(Array.length ranges) ~rounds
            run_range
      | None -> false
    in
    if not pinned then
      (* In-caller fallback (no pool, 1 job, busy pool, sequential
         backend): the same per-range bodies in range order. Rounds
         write disjoint slices, so this is bit-for-bit the parallel
         result. *)
      for round = 0 to rounds - 1 do
        for k = 0 to Array.length ranges - 1 do
          run_range ~round k
        done
      done
  end

let mv_into pool partition matrix x y =
  if not (Int.equal (Partition.rows partition) (Sparse.rows matrix)) then
    invalid_arg "Kernel.mv_into: partition does not match the matrix";
  for_ranges pool partition (fun lo hi ->
      Sparse.mv_into_range matrix x y ~lo ~hi)

let copy_into pool partition src dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Kernel.copy_into: dimension mismatch";
  if Partition.rows partition <> Array.length src then
    invalid_arg "Kernel.copy_into: partition does not match the vectors";
  for_ranges pool partition (fun lo hi -> Array.blit src lo dst lo (hi - lo))

let axpy pool partition ~alpha ~x ~y =
  if Partition.rows partition <> Array.length x then
    invalid_arg "Kernel.axpy: partition does not match the vectors";
  for_ranges pool partition (fun lo hi ->
      Vec.axpy_range ~alpha ~x ~y ~lo ~hi)

(* Reduction: fixed per-chunk partials stored by chunk index, combined
   sequentially — deterministic under any schedule. *)
let reduce pool ?chunk n partial =
  if n = 0 then 0.
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Kernel.reduce: chunk %d" c)
      | None -> max 1 (n / (8 * Pool.jobs pool))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let partials = Array.make n_chunks 0. in
    if Racecheck.enabled () then
      Racecheck.check_ranges ~what:"Kernel.reduce" ~rows:n
        (Array.init n_chunks (fun c -> (c * chunk, min n ((c + 1) * chunk))));
    Pool.run pool n_chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        partials.(c) <- partial lo hi);
    Array.fold_left ( +. ) 0. partials
  end

let dot pool ?chunk x y =
  if Array.length x <> Array.length y then
    invalid_arg "Kernel.dot: dimension mismatch";
  reduce pool ?chunk (Array.length x) (fun lo hi -> Vec.dot_range x y ~lo ~hi)

let sum pool ?chunk x =
  reduce pool ?chunk (Array.length x) (fun lo hi -> Vec.sum_range x ~lo ~hi)
