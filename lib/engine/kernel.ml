module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

let for_ranges pool partition f =
  let ranges = Partition.ranges partition in
  if Racecheck.enabled () then
    Racecheck.check_ranges ~what:"Kernel.for_ranges"
      ~rows:(Partition.rows partition) ranges;
  Pool.run pool (Array.length ranges) (fun k ->
      let lo, hi = ranges.(k) in
      if hi > lo then f lo hi)

let mv_into pool partition matrix x y =
  if not (Int.equal (Partition.rows partition) (Sparse.rows matrix)) then
    invalid_arg "Kernel.mv_into: partition does not match the matrix";
  for_ranges pool partition (fun lo hi ->
      Sparse.mv_into_range matrix x y ~lo ~hi)

let copy_into pool partition src dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Kernel.copy_into: dimension mismatch";
  if Partition.rows partition <> Array.length src then
    invalid_arg "Kernel.copy_into: partition does not match the vectors";
  for_ranges pool partition (fun lo hi -> Array.blit src lo dst lo (hi - lo))

let axpy pool partition ~alpha ~x ~y =
  if Partition.rows partition <> Array.length x then
    invalid_arg "Kernel.axpy: partition does not match the vectors";
  for_ranges pool partition (fun lo hi ->
      Vec.axpy_range ~alpha ~x ~y ~lo ~hi)

(* Reduction: fixed per-chunk partials stored by chunk index, combined
   sequentially — deterministic under any schedule. *)
let reduce pool ?chunk n partial =
  if n = 0 then 0.
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Kernel.reduce: chunk %d" c)
      | None -> max 1 (n / (8 * Pool.jobs pool))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let partials = Array.make n_chunks 0. in
    if Racecheck.enabled () then
      Racecheck.check_ranges ~what:"Kernel.reduce" ~rows:n
        (Array.init n_chunks (fun c -> (c * chunk, min n ((c + 1) * chunk))));
    Pool.run pool n_chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        partials.(c) <- partial lo hi);
    Array.fold_left ( +. ) 0. partials
  end

let dot pool ?chunk x y =
  if Array.length x <> Array.length y then
    invalid_arg "Kernel.dot: dimension mismatch";
  reduce pool ?chunk (Array.length x) (fun lo hi -> Vec.dot_range x y ~lo ~hi)

let sum pool ?chunk x =
  reduce pool ?chunk (Array.length x) (fun lo hi -> Vec.sum_range x ~lo ~hi)
