(* Domain-pool backend (OCaml >= 5.0). See pool_backend.mli; this file
   becomes pool_backend.ml through the version-guarded rule in dune.

   Design notes. A batch is an immutable record with its own atomic
   counters, published through a single atomic slot. Workers that wake
   up late keep a reference to their (already drained) batch and fetch
   indices past its size — a harmless no-op — so publishing the next
   batch can never corrupt a straggler: the failure mode of resetting
   shared counters under a slow worker does not exist. Waits are
   hybrid: a bounded cpu_relax spin (fast hand-off between the ~G
   back-to-back parallel regions of a randomization sweep) before
   falling back to a condition variable (no busy idling between
   solves, and live-lock-free on machines with fewer cores than
   jobs). *)

let parallelism_available = true
let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

type batch = {
  body : int -> unit;
  size : int;
  next : int Atomic.t;  (* next unclaimed task index *)
  completed : int Atomic.t;  (* tasks fully executed *)
}

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a new batch was published, or stop was set *)
  finished : Condition.t;  (* the current batch completed *)
  current : (int * batch) Atomic.t;  (* (generation, batch) *)
  mutable failure : (exn * Printexc.raw_backtrace) option;  (* under mutex *)
  busy : bool Atomic.t;  (* a run is in flight; re-entrant runs go sequential *)
  stop : bool Atomic.t;
  mutable workers : unit Domain.t array;
}

let spin_budget = 4_096

let jobs pool = pool.n_jobs

(* Every task runs exactly once even when some raise: failures are
   recorded, the batch always completes, the first failure is re-raised
   by the publisher. Used verbatim for the sequential fallback paths. *)
let run_sequential n body =
  let failure = ref None in
  for i = 0 to n - 1 do
    try body i
    with e ->
      if !failure = None then
        failure := Some (e, Printexc.get_raw_backtrace ())
  done;
  match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let record_failure pool e bt =
  Mutex.lock pool.mutex;
  if pool.failure = None then pool.failure <- Some (e, bt);
  Mutex.unlock pool.mutex

(* Claim and execute tasks until the batch is exhausted. The completed
   counter is incremented only after the body returns (or raises and is
   recorded), so [completed = size] really means all work is done. *)
let drain pool batch =
  let rec loop () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.size then begin
      (try batch.body i
       with e -> record_failure pool e (Printexc.get_raw_backtrace ()));
      let done_now = 1 + Atomic.fetch_and_add batch.completed 1 in
      if Int.equal done_now batch.size then begin
        Mutex.lock pool.mutex;
        Condition.broadcast pool.finished;
        Mutex.unlock pool.mutex
      end;
      loop ()
    end
  in
  loop ()

(* [seen0] is the generation current when the pool was created,
   captured by the spawning domain. The worker must NOT snapshot it
   itself: on a single-core machine the spawner routinely publishes the
   first batch before the worker executes its first instruction, and a
   worker-side snapshot would mark that batch already-seen. Plain [run]
   survives that (the publisher drains every task itself); [run_pinned]
   does not — its parties block on each other at the barrier, so a
   missing party deadlocks the sweep. *)
let worker pool seen0 =
  let seen = ref seen0 in
  let rec wait spins =
    if Atomic.get pool.stop then None
    else begin
      let generation, batch = Atomic.get pool.current in
      if not (Int.equal generation !seen) then begin
        seen := generation;
        Some batch
      end
      else if spins > 0 then begin
        Domain.cpu_relax ();
        wait (spins - 1)
      end
      else begin
        Mutex.lock pool.mutex;
        while
          (not (Atomic.get pool.stop))
          && Int.equal (fst (Atomic.get pool.current)) !seen
        do
          Condition.wait pool.work pool.mutex
        done;
        Mutex.unlock pool.mutex;
        wait spin_budget
      end
    end
  in
  let rec serve () =
    match wait spin_budget with
    | None -> ()
    | Some batch -> begin
        drain pool batch;
        serve ()
      end
  in
  serve ()

let create ~jobs:n_jobs =
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let initial_batch =
    { body = ignore; size = 0; next = Atomic.make 0; completed = Atomic.make 0 }
  in
  let pool =
    {
      n_jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = Atomic.make (0, initial_batch);
      failure = None;
      busy = Atomic.make false;
      stop = Atomic.make false;
      workers = [||];
    }
  in
  let seen0 = fst (Atomic.get pool.current) in
  pool.workers <-
    Array.init (n_jobs - 1) (fun _ ->
        Domain.spawn (fun () -> worker pool seen0));
  pool

(* Publish a batch, participate in draining it, wait for stragglers,
   re-raise the first recorded failure. Caller must hold [busy]. *)
let execute_batch pool batch =
  let n = batch.size in
  let generation = fst (Atomic.get pool.current) + 1 in
  Mutex.lock pool.mutex;
  pool.failure <- None;
  Atomic.set pool.current (generation, batch);
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (* The caller is a pool member too. *)
  drain pool batch;
  (* Wait for straggling workers: brief spin, then block. *)
  let spins = ref spin_budget in
  while Atomic.get batch.completed < n && !spins > 0 do
    Domain.cpu_relax ();
    decr spins
  done;
  if Atomic.get batch.completed < n then begin
    Mutex.lock pool.mutex;
    while Atomic.get batch.completed < n do
      Condition.wait pool.finished pool.mutex
    done;
    Mutex.unlock pool.mutex
  end;
  let failure = pool.failure in
  pool.failure <- None;
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run pool n body =
  if n <= 0 then ()
  else if
    pool.n_jobs = 1 || n = 1
    || not (Atomic.compare_and_set pool.busy false true)
  then
    (* Single-job pools, single tasks, and re-entrant/concurrent runs
       take the zero-overhead in-caller path. *)
    run_sequential n body
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set pool.busy false)
      (fun () ->
        execute_batch pool
          { body; size = n; next = Atomic.make 0; completed = Atomic.make 0 })

(* ------------------------------------------------------------------ *)
(* Pinned rounds: [parties] tasks that each survive [rounds] rounds,
   separated by a barrier, instead of republishing a batch per round.
   A randomization sweep at G ~ 40,000 iterations pays one barrier per
   iteration here versus ~7 full publish/drain/finish cycles before.

   The barrier is hybrid like the pool's other waits: a bounded
   cpu_relax spin for the back-to-back iteration hand-off, then a
   condition variable so an oversubscribed machine never live-locks. *)

type barrier = {
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  b_parties : int;
  b_arrived : int Atomic.t;
  b_round : int Atomic.t;  (* generation: bumped when a round releases *)
}

let barrier_create parties =
  {
    b_mutex = Mutex.create ();
    b_cond = Condition.create ();
    b_parties = parties;
    b_arrived = Atomic.make 0;
    b_round = Atomic.make 0;
  }

let barrier_wait b =
  (* Capture the generation BEFORE arriving: once the last party bumps
     it, earlier arrivals may already be racing into the next round. *)
  let round = Atomic.get b.b_round in
  let arrived = 1 + Atomic.fetch_and_add b.b_arrived 1 in
  if Int.equal arrived b.b_parties then begin
    (* Reset before release: nobody re-enters barrier_wait until they
       observe the new generation, which is published after this. *)
    Atomic.set b.b_arrived 0;
    Mutex.lock b.b_mutex;
    Atomic.incr b.b_round;
    Condition.broadcast b.b_cond;
    Mutex.unlock b.b_mutex
  end
  else begin
    let spins = ref spin_budget in
    while !spins > 0 && Int.equal (Atomic.get b.b_round) round do
      Domain.cpu_relax ();
      decr spins
    done;
    if Int.equal (Atomic.get b.b_round) round then begin
      Mutex.lock b.b_mutex;
      while Int.equal (Atomic.get b.b_round) round do
        Condition.wait b.b_cond b.b_mutex
      done;
      Mutex.unlock b.b_mutex
    end
  end

let run_pinned pool ~parties ~rounds body =
  if
    pool.n_jobs = 1 || parties < 2 || parties > pool.n_jobs || rounds < 1
  then false
  else if not (Atomic.compare_and_set pool.busy false true) then
    (* Concurrent/re-entrant use: the caller falls back to its own
       sequential loop, exactly like [run] degrading. *)
    false
  else begin
    Fun.protect
      ~finally:(fun () -> Atomic.set pool.busy false)
      (fun () ->
        let barrier = barrier_create parties in
        let failed = Atomic.make false in
        (* Every party must keep arriving at the barrier even after a
           failure, or the others deadlock; after the first recorded
           failure the remaining rounds skip their bodies (the batch
           re-raises, so the half-written results are never observed). *)
        let task k =
          for round = 0 to rounds - 1 do
            if not (Atomic.get failed) then begin
              try body ~round k
              with e ->
                record_failure pool e (Printexc.get_raw_backtrace ());
                Atomic.set failed true
            end;
            if round < rounds - 1 then barrier_wait barrier
          done
        in
        execute_batch pool
          {
            body = task;
            size = parties;
            next = Atomic.make 0;
            completed = Atomic.make 0;
          });
    true
  end

let shutdown pool =
  Atomic.set pool.stop true;
  Mutex.lock pool.mutex;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]
