(** Batch solver front-end: many [(model, times, order, eps, method)]
    jobs, deduplicated and run across a {!Mrm_engine.Pool}.

    Parallelism works at two levels that share one pool: independent
    unique jobs run concurrently via [Pool.map_array], and each solve
    passes the pool down to {!Mrm_core.Randomization} — whichever level
    grabs the pool first wins, the other degrades to sequential (the
    pool's re-entrancy rule), so a batch of one big job parallelizes
    inside the solve while a batch of many small jobs parallelizes
    across them.

    Deduplication is structural: jobs are keyed by a digest of the full
    model content (generator triplets, rewards, initial vector) plus the
    solve parameters, so two jobs that load the same model file — or
    build the same built-in — solve once and share the result; the
    duplicate's outcome names the representative it reused.

    This module also speaks the [mrm2 batch] JSONL wire format:
    {!job_of_json} / {!outcome_to_json}, one JSON object per line. *)

type meth = Randomization | Ode | Gaver
(** The same solver choices as [mrm2 moments --method]. *)

type kind = Moments | Stationary of { drain : float; regularize : float }
(** What to compute: transient accumulated-reward moments (the original
    batch job, [kind] absent or ["moments"] on the wire) or the MMBM
    stationary density via {!Mrm_mmbm.Mmbm.solve} ([kind] =
    ["stationary"], with optional [drain] > mean reward rate and
    [regularize] variance floor). *)

type job = {
  id : string;
  model : Mrm_core.Model.t;
  times : float array;
      (** time points; empty (and unused) for stationary jobs *)
  order : int;  (** highest moment order (moments jobs) *)
  eps : float;  (** randomization truncation-error bound *)
  meth : meth;
  kind : kind;
}

type point = {
  time : float;
  values : float array;
      (** unconditional raw moments [E[B(t)^n]], [n = 0 .. order] *)
  iterations : int option;
      (** randomization truncation point [G] (None for ode/gaver) *)
}

type density = {
  marginal : float array;  (** stationary phase marginal (sums to 1) *)
  mean_level : float;  (** stationary mean of the regulated level *)
  reward_rate : float;  (** long-run reward rate under the marginal *)
  tau : float;  (** CR shift parameter *)
  cr_iterations : int;
  residual : float;  (** quadratic-equation residual of the solvent *)
  stationary_warnings : string list;
      (** rendered [CODE: message] lines from {!Mrm_mmbm.Mmbm.solve} *)
}

type solution = Points of point array | Density of density
(** [Points] for moments jobs, [Density] for stationary jobs. *)

type outcome = {
  id : string;
  digest : string;  (** structural job key (hex) *)
  duplicate_of : string option;
      (** [Some id'] when this job reused the solve of job [id'] *)
  elapsed : float;  (** solve wall-clock seconds; 0 for reused results *)
  result : (solution, string) result;
      (** the solution, or the exception message when the solve raised
          (one failing job does not abort the batch) *)
}

val digest : job -> string
(** Hex digest of the job's full structural content; equal digests
    means interchangeable solves. Moments digests are byte-identical to
    the pre-[kind] wire format; stationary jobs append a tag plus their
    [drain]/[regularize] parameters. *)

val run : ?pool:Mrm_engine.Pool.t -> job array -> outcome array
(** Solve every job; output order matches input order. Without [pool]
    (or with a 1-job pool) everything runs sequentially in the
    caller. *)

(* ------------------------------------------------------------------ *)
(* JSONL wire format                                                    *)

val job_of_json :
  default_id:string -> ?default_eps:float -> Mrm_util.Json.t ->
  (job, string) result
(** Decode one job-spec object. Fields: [model] (built-in name
    [onoff]/[repair]/[multi], with optional [sigma2], [size]) {e or}
    [file] (a Model_io path); [times] (array) or [t] (scalar); optional
    [id] (default [default_id]), [order] (default 3), [eps] (default
    [default_eps], itself defaulting to 1e-9) and [method]
    (default [randomization]). Optional [kind] selects the computation:
    ["moments"] (default) or ["stationary"] (with optional [drain] and
    [regularize] numbers; [times] may then be omitted). An unrecognised
    [kind] is rejected with an [MRM069] message that names the offending
    value and the supported set. Files declaring impulse rewards are
    rejected — route those through [mrm2 moments]. *)

val outcome_to_json : outcome -> Mrm_util.Json.t
(** [{"id", "digest", "duplicate_of", "elapsed", "status": "ok" |
    "error", then "points": [{"t", "moments", "iterations"?}] or
    "stationary": {"marginal", "mean_level", "reward_rate", "tau",
    "iterations", "residual", "warnings"} or "error": message}]. *)
