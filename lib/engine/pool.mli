(** Fixed-size domain pool with a chunked parallel-for scheduler — the
    execution layer every parallel kernel and the batch front-end run
    on.

    On OCaml 5 a pool owns [jobs - 1] worker domains plus the calling
    domain; work is handed out dynamically (an atomic index counter),
    so uneven tasks self-balance. On OCaml 4.14 the same API executes
    in the caller (see {!Pool_backend}); code written against this
    module never needs a version guard.

    Sizing: [create ()] uses [MRM2_JOBS] when set, otherwise
    [Domain.recommended_domain_count ()]. A pool with [jobs = 1] never
    spawns domains and adds zero overhead — sequential behaviour is the
    safe default everywhere a pool is optional. *)

type t

val parallelism_available : bool
(** False when the backend cannot run domains in parallel (OCaml
    4.14); pools still work, sequentially. *)

val env_jobs : unit -> int option
(** The [MRM2_JOBS] override: [Some j] when the variable holds an
    integer >= 1, [None] otherwise (unset or malformed). *)

val default_jobs : unit -> int
(** [MRM2_JOBS] when set, else [Domain.recommended_domain_count ()]
    (1 on the sequential backend). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5, [1] on the
    sequential backend — the machine's usable core count, ignoring
    [MRM2_JOBS]. Lets callers (benchmarks, smoke tests) distinguish "the
    user asked for N domains" from "the hardware can actually run N". *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains. Idempotent. Do not call concurrently with
    {!run} on the same pool. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], apply, [shutdown] (also on exception). *)

val run : t -> int -> (int -> unit) -> unit
(** [run pool n body] executes the tasks [body 0 .. body (n-1)] across
    the pool and returns when all have finished. Tasks must only write
    to disjoint state (distinct array slices, distinct result slots).
    Every task runs even if some raise; the first exception is
    re-raised afterwards and the pool survives. Re-entrant use —
    [body] calling [run]/[parallel_for] on the same pool — degrades to
    sequential execution instead of deadlocking. *)

val run_pinned :
  t -> parties:int -> rounds:int -> (round:int -> int -> unit) -> bool
(** Persistent-chunk execution (see {!Pool_backend.run_pinned}): task
    [k] runs [body ~round k] for [round = 0 .. rounds-1] pinned to one
    domain, with a barrier between rounds — one synchronization per
    round instead of a batch publish per kernel call. Returns [false]
    without running anything when the pool cannot hold the protocol
    (1 job, [parties < 2], [parties > jobs], busy, or the sequential
    backend); callers fall back to an in-caller loop, which computes
    bit-for-bit the same result when round bodies write disjoint
    slices. *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] applies [f] to [0 .. n-1], grouping
    indices into contiguous chunks of size [chunk] (default:
    [n / (8 * jobs)], at least 1) that are scheduled dynamically.
    Same exception and re-entrancy guarantees as {!run}. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; the independent-jobs primitive behind the
    batch runner. Result order matches input order. *)
