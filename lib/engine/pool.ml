type t = Pool_backend.t

let m_runs = Mrm_obs.Metrics.counter "pool.runs"
let m_jobs = Mrm_obs.Metrics.counter "pool.jobs"

let parallelism_available = Pool_backend.parallelism_available

let env_jobs () =
  match Sys.getenv_opt "MRM2_JOBS" with
  | None -> None
  | Some raw -> begin
      match int_of_string_opt (String.trim raw) with
      | Some j when j >= 1 -> Some j
      | _ -> None
    end

let default_jobs () =
  match env_jobs () with
  | Some j -> j
  | None -> Pool_backend.recommended_jobs ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  Pool_backend.create ~jobs

let jobs = Pool_backend.jobs
let shutdown = Pool_backend.shutdown

let recommended_jobs = Pool_backend.recommended_jobs

let run pool n f =
  Mrm_obs.Metrics.incr m_runs;
  Mrm_obs.Metrics.incr ~by:(max 0 n) m_jobs;
  Pool_backend.run pool n f

let run_pinned pool ~parties ~rounds body =
  let accepted = Pool_backend.run_pinned pool ~parties ~rounds body in
  if accepted then begin
    Mrm_obs.Metrics.incr m_runs;
    Mrm_obs.Metrics.incr ~by:(max 0 parties) m_jobs
  end;
  accepted

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let parallel_for pool ?chunk ~n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_for: chunk %d" c)
      | None -> max 1 (n / (8 * jobs pool))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    run pool n_chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        for i = lo to hi - 1 do
          f i
        done)
  end

let map_array pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run pool n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end
