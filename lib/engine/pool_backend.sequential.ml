(* Sequential backend for OCaml < 5.0, where the runtime has no domain
   parallelism. See pool_backend.mli; this file becomes pool_backend.ml
   through the version-guarded rule in dune.

   Semantics match the domain backend exactly — every task runs once,
   the first exception is re-raised after the whole batch has executed,
   the pool survives — only the execution is in-caller. Kept to plain
   4.14 stdlib: no Domain, no Atomic. *)

let parallelism_available = false
let recommended_jobs () = 1

type t = { n_jobs : int }

let create ~jobs:n_jobs =
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { n_jobs }

let jobs pool = pool.n_jobs

let run _pool n body =
  let failure = ref None in
  for i = 0 to n - 1 do
    try body i
    with e ->
      if !failure = None then
        failure := Some (e, Printexc.get_raw_backtrace ())
  done;
  match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run_pinned _pool ~parties:_ ~rounds:_ _body = false

let shutdown _pool = ()
