module Json = Mrm_util.Json
module Trace = Mrm_obs.Trace
module Metrics = Mrm_obs.Metrics
module Pool = Mrm_engine.Pool
module Vec = Mrm_linalg.Vec
module Sparse = Mrm_linalg.Sparse
module Generator = Mrm_ctmc.Generator
module Model = Mrm_core.Model
module Model_io = Mrm_core.Model_io

type meth = Randomization | Ode | Gaver

type kind = Moments | Stationary of { drain : float; regularize : float }

type job = {
  id : string;
  model : Model.t;
  times : float array;
  order : int;
  eps : float;
  meth : meth;
  kind : kind;
}

type point = { time : float; values : float array; iterations : int option }

type density = {
  marginal : float array;
  mean_level : float;
  reward_rate : float;
  tau : float;
  cr_iterations : int;
  residual : float;
  stationary_warnings : string list;
}

type solution = Points of point array | Density of density

type outcome = {
  id : string;
  digest : string;
  duplicate_of : string option;
  elapsed : float;
  result : (solution, string) result;
}

(* ------------------------------------------------------------------ *)
(* Structural digest: the full model content plus solve parameters.
   Floats are keyed by their bit pattern — dedup means "the solver
   would compute the exact same thing", nothing fuzzier. *)

let add_float buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)
let add_int buf k = Buffer.add_int64_le buf (Int64.of_int k)

let add_floats buf a =
  add_int buf (Array.length a);
  Array.iter (add_float buf) a

let digest job =
  let buf = Buffer.create 1024 in
  let m = job.model.Model.generator |> Generator.matrix in
  add_int buf (Sparse.rows m);
  Sparse.iter m (fun i j v ->
      add_int buf i;
      add_int buf j;
      add_float buf v);
  add_floats buf job.model.Model.rates;
  add_floats buf job.model.Model.variances;
  add_floats buf job.model.Model.initial;
  add_floats buf job.times;
  add_int buf job.order;
  add_float buf job.eps;
  add_int buf (match job.meth with Randomization -> 0 | Ode -> 1 | Gaver -> 2);
  (* Moments digests end here, byte-identical to the pre-kind format, so
     existing caches and dedup keys survive. Stationary jobs append a
     discriminating tag plus their own parameters. *)
  (match job.kind with
  | Moments -> ()
  | Stationary { drain; regularize } ->
      add_int buf 1;
      add_float buf drain;
      add_float buf regularize);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Solving                                                              *)

let unconditional model ~order vectors =
  let pi = model.Model.initial in
  Array.init (order + 1) (fun n -> Vec.dot pi vectors.(n))

let solve_stationary job ~drain ~regularize =
  let r =
    Mrm_mmbm.Mmbm.solve ~drain
      ?regularize:(if regularize > 0. then Some regularize else None)
      job.model
  in
  Density
    {
      marginal = r.Mrm_mmbm.Mmbm.marginal;
      mean_level = r.Mrm_mmbm.Mmbm.mean_level;
      reward_rate = r.Mrm_mmbm.Mmbm.reward_rate;
      tau = r.Mrm_mmbm.Mmbm.tau;
      cr_iterations = r.Mrm_mmbm.Mmbm.iterations;
      residual = r.Mrm_mmbm.Mmbm.residual;
      stationary_warnings =
        List.map
          (fun (d : Mrm_check.Diagnostics.t) ->
            Printf.sprintf "%s: %s" d.code d.message)
          r.Mrm_mmbm.Mmbm.warnings;
    }

let solve_moments ?pool job =
  match job.meth with
  | Randomization ->
      let results =
        Mrm_core.Randomization.moments_at_times ?pool ~eps:job.eps job.model
          ~times:job.times ~order:job.order
      in
      Array.mapi
        (fun k (r : Mrm_core.Randomization.result) ->
          {
            time = job.times.(k);
            values = unconditional job.model ~order:job.order r.moments;
            iterations = Some r.diagnostics.iterations;
          })
        results
  | Ode ->
      Array.map
        (fun time ->
          let m =
            Mrm_core.Moments_ode.moments job.model ~t:time ~order:job.order
          in
          {
            time;
            values = unconditional job.model ~order:job.order m;
            iterations = None;
          })
        job.times
  | Gaver ->
      Array.map
        (fun time ->
          let m =
            Mrm_core.Transform_moments.moments job.model ~t:time
              ~order:job.order
          in
          {
            time;
            values = unconditional job.model ~order:job.order m;
            iterations = None;
          })
        job.times

let solve ?pool job =
  match job.kind with
  | Moments -> Points (solve_moments ?pool job)
  | Stationary { drain; regularize } -> solve_stationary job ~drain ~regularize

let timed_solve ?pool job =
  let t0 = Unix.gettimeofday () in
  let result =
    match solve ?pool job with
    | solution -> Ok solution
    | exception exn -> Error (Printexc.to_string exn)
  in
  (result, Unix.gettimeofday () -. t0)

let m_jobs = Metrics.counter "batch.jobs"
let m_dedup_hits = Metrics.counter "batch.dedup_hits"

let run ?pool jobs =
  let n = Array.length jobs in
  Trace.with_span "batch.run" ~attrs:[ ("jobs", Trace.Int n) ] @@ fun () ->
  let digests = Array.map digest jobs in
  (* representative.(i) is the first job with job i's digest. *)
  let first_of_digest = Hashtbl.create (2 * n) in
  let representative =
    Array.mapi
      (fun i key ->
        match Hashtbl.find_opt first_of_digest key with
        | Some j -> j
        | None ->
            Hashtbl.add first_of_digest key i;
            i)
      digests
  in
  let unique =
    Array.of_seq
      (Seq.filter
         (fun i -> Int.equal representative.(i) i)
         (Seq.init n (fun i -> i)))
  in
  Metrics.incr ~by:n m_jobs;
  Metrics.incr ~by:(n - Array.length unique) m_dedup_hits;
  Trace.add_attr "unique" (Trace.Int (Array.length unique));
  (* Outer level: unique jobs across the pool. Each solve also receives
     the pool; re-entrant use degrades to sequential, so exactly one
     level wins (inner when there is a single unique job — map_array of
     one task runs in the caller without claiming the pool). *)
  let solved =
    match pool with
    | Some pool -> Pool.map_array pool (fun i -> timed_solve ~pool jobs.(i)) unique
    | None -> Array.map (fun i -> timed_solve jobs.(i)) unique
  in
  let slot = Array.make n (-1) in
  Array.iteri (fun pos i -> slot.(i) <- pos) unique;
  Array.mapi
    (fun i (job : job) ->
      let rep = representative.(i) in
      let result, elapsed = solved.(slot.(rep)) in
      {
        id = job.id;
        digest = digests.(i);
        duplicate_of = (if Int.equal rep i then None else Some jobs.(rep).id);
        elapsed = (if Int.equal rep i then elapsed else 0.);
        result;
      })
    jobs

(* ------------------------------------------------------------------ *)
(* JSONL wire format                                                    *)

let ( let* ) r f = Result.bind r f

let field_or json key ~default decode =
  match Json.member key json with
  | None -> Ok default
  | Some v -> (
      match decode v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: invalid value" key))

let meth_of_string = function
  | "randomization" | "rand" -> Some Randomization
  | "ode" -> Some Ode
  | "gaver" -> Some Gaver
  | _ -> None

let builtin_model json name =
  let* sigma2 = field_or json "sigma2" ~default:1.0 Json.to_float in
  let* size = field_or json "size" ~default:32 Json.to_int in
  match name with
  | "onoff" ->
      Ok
        (Mrm_models.Onoff.model
           {
             (Mrm_models.Onoff.table1 ~sigma2) with
             sources = size;
             capacity = float_of_int size;
           })
  | "repair" ->
      Ok
        Mrm_models.Machine_repair.(
          model { default with machines = size })
  | "multi" ->
      Ok
        Mrm_models.Multiprocessor.(
          model { default with processors = size })
  | other -> Error (Printf.sprintf "unknown built-in model %S" other)

let model_of_spec json =
  match (Json.member "file" json, Json.member "model" json) with
  | Some _, Some _ -> Error "give either \"file\" or \"model\", not both"
  | None, None -> Error "missing model source (\"file\" or \"model\")"
  | Some f, None -> (
      match Json.to_str f with
      | None -> Error "field \"file\": expected a string"
      | Some path -> (
          match Model_io.load path with
          | { Model_io.model; impulses = [] } -> Ok model
          | { Model_io.impulses = _ :: _; _ } ->
              Error
                (Printf.sprintf
                   "%s declares impulse rewards, unsupported in batch \
                    (use mrm2 moments)"
                   path)
          | exception exn -> Error (Printexc.to_string exn)))
  | None, Some m -> (
      match Json.to_str m with
      | None -> Error "field \"model\": expected a built-in name"
      | Some name -> builtin_model json name)

let times_of_spec json =
  match (Json.member "times" json, Json.member "t" json) with
  | Some _, Some _ -> Error "give either \"times\" or \"t\", not both"
  | None, None -> Error "missing time points (\"times\" or \"t\")"
  | None, Some t -> (
      match Json.to_float t with
      | Some t -> Ok [| t |]
      | None -> Error "field \"t\": expected a number")
  | Some l, None -> (
      match Json.to_list l with
      | None -> Error "field \"times\": expected an array"
      | Some items -> (
          let floats = List.filter_map Json.to_float items in
          match (floats, List.length floats = List.length items) with
          | [], _ -> Error "field \"times\": empty"
          | _, false -> Error "field \"times\": expected numbers"
          | floats, true -> Ok (Array.of_list floats)))

let supported_kinds = [ "moments"; "stationary" ]

let kind_of_json json =
  match Json.member "kind" json with
  | None -> Ok `Moments
  | Some v -> (
      match Json.to_str v with
      | None -> Error "field \"kind\": expected a string"
      | Some "moments" -> Ok `Moments
      | Some "stationary" -> Ok `Stationary
      | Some other ->
          Error
            (Printf.sprintf "MRM069: unknown job kind %S (supported: %s)"
               other
               (String.concat ", " supported_kinds)))

let job_of_json ~default_id ?(default_eps = 1e-9) json =
  match json with
  | Json.Obj _ ->
      let* id = field_or json "id" ~default:default_id Json.to_str in
      let* kind_tag = kind_of_json json in
      let* model = model_of_spec json in
      let* times =
        (* Stationary solves have no time axis; tolerate an absent spec
           (an explicit one is still validated so typos surface). *)
        match (kind_tag, Json.member "times" json, Json.member "t" json) with
        | `Stationary, None, None -> Ok [||]
        | _ -> times_of_spec json
      in
      let* order = field_or json "order" ~default:3 Json.to_int in
      let* eps = field_or json "eps" ~default:default_eps Json.to_float in
      let* meth =
        field_or json "method" ~default:Randomization (fun v ->
            Option.bind (Json.to_str v) meth_of_string)
      in
      let* kind =
        match kind_tag with
        | `Moments -> Ok Moments
        | `Stationary ->
            let* drain = field_or json "drain" ~default:0. Json.to_float in
            let* regularize =
              field_or json "regularize" ~default:0. Json.to_float
            in
            if not (Float.is_finite drain) then
              Error "field \"drain\": must be finite"
            else if not (Float.is_finite regularize && regularize >= 0.) then
              Error "field \"regularize\": must be >= 0"
            else Ok (Stationary { drain; regularize })
      in
      if order < 0 then Error "field \"order\": must be >= 0"
      else if not (eps > 0.) then Error "field \"eps\": must be > 0"
      else if Array.exists (fun t -> t < 0.) times then
        Error "field \"times\": must be >= 0"
      else Ok { id; model; times; order; eps; meth; kind }
  | _ -> Error "job spec must be a JSON object"

let outcome_to_json o =
  let open Json in
  let common =
    [
      ("id", Str o.id);
      ("digest", Str o.digest);
      ( "duplicate_of",
        match o.duplicate_of with None -> Null | Some id -> Str id );
      ("elapsed", Num o.elapsed);
    ]
  in
  match o.result with
  | Error message ->
      Obj (common @ [ ("status", Str "error"); ("error", Str message) ])
  | Ok (Points points) ->
      let point p =
        Obj
          ([
             ("t", Num p.time);
             ("moments", List (Array.to_list (Array.map (fun v -> Num v) p.values)));
           ]
          @
          match p.iterations with
          | None -> []
          | Some g -> [ ("iterations", Num (float_of_int g)) ])
      in
      Obj
        (common
        @ [
            ("status", Str "ok");
            ("points", List (Array.to_list (Array.map point points)));
          ])
  | Ok (Density d) ->
      let nums a = List (Array.to_list (Array.map (fun v -> Num v) a)) in
      Obj
        (common
        @ [
            ("status", Str "ok");
            ( "stationary",
              Obj
                [
                  ("marginal", nums d.marginal);
                  ("mean_level", Num d.mean_level);
                  ("reward_rate", Num d.reward_rate);
                  ("tau", Num d.tau);
                  ("iterations", Num (float_of_int d.cr_iterations));
                  ("residual", Num d.residual);
                  ( "warnings",
                    List (List.map (fun w -> Str w) d.stationary_warnings) );
                ] );
          ])
