(** Dynamic race checker for the partitioned kernels.

    The engine's correctness contract — parallel jobs write pairwise
    disjoint index ranges that tile the whole space, shared state goes
    through [Atomic] — is a convention the type system cannot see. With
    [MRM2_RACECHECK=1] (or {!set_enabled}), {!Kernel} validates the
    write ranges of every sweep before dispatch and aborts with {!Race}
    on violation, naming both offending jobs. The static complement is
    [Mrm_analysis]'s [SRC005] rule.

    Cost: one O(parts log parts) scan per kernel call — noise next to
    the O(nnz) sweep it guards — and nothing at all when disabled. The
    checker never changes what the kernels compute: an instrumented
    solve is bit-for-bit identical to an unchecked one. *)

exception Race of Mrm_check.Diagnostics.t
(** The payload names both parties ([job_a]/[range_a], [job_b]/
    [range_b] context keys for overlaps; [gap] for coverage holes) and
    the kernel that tripped. A printer is registered. *)

val enabled : unit -> bool
(** True when [MRM2_RACECHECK] is [1]/[true]/[on]/[yes] (read once,
    cached) or an override is in force. *)

val set_enabled : bool option -> unit
(** Test hook: [Some b] forces the checker on/off, [None] returns to
    the environment setting. *)

val note_statically_proven : ?count:int -> unit -> unit
(** Record [count] (default 1) kernel sites whose write-disjointness
    was proven statically by [Mrm_analysis]'s SRC020 pass; bumps the
    [racecheck.statically_proven] counter so metrics reports can show
    static proofs alongside the dynamically validated sweep count
    ([racecheck.sweeps]). *)

val check_ranges : what:string -> rows:int -> (int * int) array -> unit
(** [check_ranges ~what ~rows ranges] validates that the per-job
    [[lo, hi)] write ranges are within bounds ([RACE003]), pairwise
    disjoint ([RACE001]) and cover [[0, rows)] exactly ([RACE002]);
    empty ranges are legal. [what] names the calling kernel in the
    diagnostic. @raise Race on violation. *)

val code_table : (string * Mrm_check.Diagnostics.severity * string) list
(** Registry of the runtime diagnostic codes, mirroring
    [Check.code_table]. *)
