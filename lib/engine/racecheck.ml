(* Dynamic verification of the engine's write-disjointness invariant.

   The partitioned kernels are only deterministic (and memory-safe in
   the "no torn results" sense) because every job writes its own
   [lo, hi) slice and the slices tile the index space. That convention
   is invisible to the type system; under MRM2_RACECHECK=1 every sweep
   validates it before dispatch and aborts loudly on violation — a
   cheap, exact race detector for the one race class the parallel
   randomization sweep can actually have. *)

module Diagnostics = Mrm_check.Diagnostics

exception Race of Diagnostics.t

let () =
  Printexc.register_printer (function
    | Race d -> Some (Format.asprintf "Mrm_engine.Racecheck.Race: %a" Diagnostics.pp d)
    | _ -> None)

let m_sweeps = Mrm_obs.Metrics.counter "racecheck.sweeps"

(* Sites whose write-disjointness the static pass (SRC020) proved;
   recorded next to the dynamic sweep counter so a coverage report can
   say "N sweeps checked at runtime, M kernel bodies proven for free". *)
let m_statically_proven = Mrm_obs.Metrics.counter "racecheck.statically_proven"

let note_statically_proven ?(count = 1) () =
  Mrm_obs.Metrics.incr ~by:count m_statically_proven

(* Enabled by MRM2_RACECHECK (1/true/on/yes), cached after the first
   query; [set_enabled] overrides for tests without touching the
   environment. *)
let override = ref None

let env_enabled =
  lazy
    (match Sys.getenv_opt "MRM2_RACECHECK" with
    | Some raw -> begin
        match String.lowercase_ascii (String.trim raw) with
        | "1" | "true" | "on" | "yes" -> true
        | _ -> false
      end
    | None -> false)

let enabled () =
  match !override with Some b -> b | None -> Lazy.force env_enabled

let set_enabled o = override := o

let pp_range ppf (lo, hi) = Format.fprintf ppf "[%d,%d)" lo hi
let range_str r = Format.asprintf "%a" pp_range r

let fail ~what ~code ~context message =
  raise
    (Race
       (Diagnostics.error ~code
          ~context:(("kernel", what) :: context)
          message))

let check_ranges ~what ~rows ranges =
  Mrm_obs.Metrics.incr m_sweeps;
  Array.iteri
    (fun k (lo, hi) ->
      if lo < 0 || hi > rows || hi < lo then
        fail ~what ~code:"RACE003"
          ~context:
            [
              ("job", string_of_int k);
              ("range", range_str (lo, hi));
              ("rows", string_of_int rows);
            ]
          (Printf.sprintf
             "job %d writes malformed range %s outside [0,%d)" k
             (range_str (lo, hi)) rows))
    ranges;
  (* sort job indices by range start; overlap and coverage are then
     adjacent-pair properties *)
  let order = Array.init (Array.length ranges) Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare (fst ranges.(a)) (fst ranges.(b)) with
      | 0 -> Int.compare (snd ranges.(a)) (snd ranges.(b))
      | c -> c)
    order;
  let nonempty =
    Array.to_list order |> List.filter (fun k -> snd ranges.(k) > fst ranges.(k))
  in
  let pair_context a b =
    [
      ("job_a", string_of_int a);
      ("range_a", range_str ranges.(a));
      ("job_b", string_of_int b);
      ("range_b", range_str ranges.(b));
    ]
  in
  let rec scan covered_to = function
    | [] ->
        if covered_to < rows then
          fail ~what ~code:"RACE002"
            ~context:
              [
                ("gap", range_str (covered_to, rows));
                ("rows", string_of_int rows);
              ]
            (Printf.sprintf
               "write ranges do not cover the index space: gap %s"
               (range_str (covered_to, rows)))
    | k :: rest ->
        let lo, hi = ranges.(k) in
        if lo < covered_to then begin
          (* name both parties: the previous job is the one that wrote
             up to [covered_to] *)
          let prev =
            match
              List.find_opt
                (fun j ->
                  (not (Int.equal j k))
                  && snd ranges.(j) > lo
                  && fst ranges.(j) <= lo)
                nonempty
            with
            | Some j -> j
            | None -> k (* unreachable: some prefix job covered past lo *)
          in
          fail ~what ~code:"RACE001" ~context:(pair_context prev k)
            (Printf.sprintf
               "parallel write ranges overlap: job %d %s intersects job %d %s"
               prev
               (range_str ranges.(prev))
               k (range_str ranges.(k)))
        end
        else if lo > covered_to then
          fail ~what ~code:"RACE002"
            ~context:
              [ ("gap", range_str (covered_to, lo)); ("rows", string_of_int rows) ]
            (Printf.sprintf
               "write ranges do not cover the index space: gap %s"
               (range_str (covered_to, lo)))
        else scan hi rest
  in
  scan 0 nonempty

let code_table =
  [
    ("RACE001", Diagnostics.Error, "parallel write ranges overlap");
    ("RACE002", Diagnostics.Error, "write ranges leave part of the index space uncovered");
    ("RACE003", Diagnostics.Error, "malformed write range (out of bounds or inverted)");
  ]
