(** Partitioned (multi-domain) linear-algebra kernels.

    Each kernel splits its index space along a {!Partition} and runs
    the per-range slice primitives of {!Mrm_linalg} ([mv_into_range],
    [axpy_range], [dot_range]) across a {!Pool}. Results are
    deterministic: ranges write disjoint slices, and reductions
    combine fixed per-chunk partials in chunk order regardless of the
    execution schedule — so a parallel randomization sweep reproduces
    the sequential one bit for bit.

    Under [MRM2_RACECHECK=1] every kernel call first validates its
    write ranges (disjointness and full coverage) with
    {!Racecheck.check_ranges} and aborts with {!Racecheck.Race} on
    violation; the check is observational — it never changes what the
    kernels compute. *)

val for_ranges : Pool.t -> Partition.t -> (int -> int -> unit) -> unit
(** [for_ranges pool partition f] runs [f lo hi] for every non-empty
    range; the escape hatch for fused per-range bodies (the solver's
    recursion step fuses mat-vec and the reward-vector terms into one
    region). Same exception guarantees as {!Pool.run}. *)

val mv_into :
  Pool.t -> Partition.t -> Mrm_linalg.Sparse.t -> Mrm_linalg.Vec.t ->
  Mrm_linalg.Vec.t -> unit
(** Partitioned {!Mrm_linalg.Sparse.mv_into}. The partition must have
    the matrix's row count. @raise Invalid_argument on dimension or
    partition mismatch. *)

val copy_into : Pool.t -> Partition.t -> Mrm_linalg.Vec.t ->
  Mrm_linalg.Vec.t -> unit
(** Partitioned blit of equal-length vectors. *)

val axpy : Pool.t -> Partition.t -> alpha:float -> x:Mrm_linalg.Vec.t ->
  y:Mrm_linalg.Vec.t -> unit
(** Partitioned in-place [y := alpha x + y]. *)

val dot : Pool.t -> ?chunk:int -> Mrm_linalg.Vec.t -> Mrm_linalg.Vec.t ->
  float
(** Parallel reduction; [chunk] defaults to [dim / (8 jobs)]. The
    chunked summation order differs from the sequential left-to-right
    one, but is itself deterministic for a fixed [chunk]. *)

val sum : Pool.t -> ?chunk:int -> Mrm_linalg.Vec.t -> float
