(** Partitioned (multi-domain) linear-algebra kernels.

    Each kernel splits its index space along a {!Partition} and runs
    the per-range slice primitives of {!Mrm_linalg} ([mv_into_range],
    [axpy_range], [dot_range]) across a {!Pool}. Results are
    deterministic: ranges write disjoint slices, and reductions
    combine fixed per-chunk partials in chunk order regardless of the
    execution schedule — so a parallel randomization sweep reproduces
    the sequential one bit for bit.

    Under [MRM2_RACECHECK=1] every kernel call first validates its
    write ranges (disjointness and full coverage) with
    {!Racecheck.check_ranges} and aborts with {!Racecheck.Race} on
    violation; the check is observational — it never changes what the
    kernels compute. *)

type structure
(** A matrix together with its detected storage structure: the
    tridiagonal band form for birth–death generators (the paper's
    ON–OFF family), plain CSR otherwise. *)

val detect : Mrm_linalg.Sparse.t -> structure
(** One O(nnz) pass ({!Mrm_linalg.Sparse.as_tridiagonal}); run once per
    solve, at setup time. *)

val structure_kind : structure -> string
(** ["tridiagonal"] or ["csr"] — for traces and benchmark records. *)

val mv_fused :
  structure -> Mrm_linalg.Vec.t array -> Mrm_linalg.Vec.t array ->
  lo:int -> hi:int -> unit
(** [mv_fused st xs ys ~lo ~hi] writes rows [lo .. hi-1] of [A xs.(k)]
    into [ys.(k)] for every [k], walking each matrix row once,
    dispatching on the detected structure. Bit-for-bit equal to
    repeated {!Mrm_linalg.Sparse.mv_into_range} calls. *)

val sweep :
  Pool.t option -> Partition.t -> rounds:int ->
  (round:int -> lo:int -> hi:int -> unit) -> unit
(** [sweep pool partition ~rounds body] runs [body ~round ~lo ~hi] for
    every partition range and every [round = 0 .. rounds-1], with all
    ranges of round [r] complete before any range of round [r+1]
    starts. On a multi-domain pool this uses {!Pool.run_pinned}: each
    range is pinned to one domain for the whole sweep and consecutive
    rounds are separated by a single barrier — the execution model of
    the fused randomization recursion (one barrier per iteration
    instead of a batch publish per kernel call). Whenever the pinned
    protocol is unavailable ([None], 1 job, busy pool, sequential
    backend) the same bodies run in the caller, in range order, which
    is bit-for-bit identical because bodies write disjoint row slices.
    Empty ranges are skipped (their parties still meet every barrier).
    Under [MRM2_RACECHECK=1] the ranges are validated once per sweep
    with {!Racecheck.check_ranges}. *)

val for_ranges : Pool.t -> Partition.t -> (int -> int -> unit) -> unit
(** [for_ranges pool partition f] runs [f lo hi] for every non-empty
    range; the escape hatch for fused per-range bodies (the solver's
    recursion step fuses mat-vec and the reward-vector terms into one
    region). Same exception guarantees as {!Pool.run}. *)

val mv_into :
  Pool.t -> Partition.t -> Mrm_linalg.Sparse.t -> Mrm_linalg.Vec.t ->
  Mrm_linalg.Vec.t -> unit
(** Partitioned {!Mrm_linalg.Sparse.mv_into}. The partition must have
    the matrix's row count. @raise Invalid_argument on dimension or
    partition mismatch. *)

val copy_into : Pool.t -> Partition.t -> Mrm_linalg.Vec.t ->
  Mrm_linalg.Vec.t -> unit
(** Partitioned blit of equal-length vectors. *)

val axpy : Pool.t -> Partition.t -> alpha:float -> x:Mrm_linalg.Vec.t ->
  y:Mrm_linalg.Vec.t -> unit
(** Partitioned in-place [y := alpha x + y]. *)

val dot : Pool.t -> ?chunk:int -> Mrm_linalg.Vec.t -> Mrm_linalg.Vec.t ->
  float
(** Parallel reduction; [chunk] defaults to [dim / (8 jobs)]. The
    chunked summation order differs from the sequential left-to-right
    one, but is itself deterministic for a fixed [chunk]. *)

val sum : Pool.t -> ?chunk:int -> Mrm_linalg.Vec.t -> float
