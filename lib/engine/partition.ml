module Sparse = Mrm_linalg.Sparse

let m_imbalance = Mrm_obs.Metrics.gauge "partition.imbalance"

type t = { ranges : (int * int) array; rows : int }

let ranges p = p.ranges
let parts p = Array.length p.ranges
let rows p = p.rows

let uniform ~parts ~rows =
  if parts < 1 then invalid_arg "Partition.uniform: parts must be >= 1";
  if rows < 0 then invalid_arg "Partition.uniform: negative rows";
  let boundary k = k * rows / parts in
  {
    ranges = Array.init parts (fun k -> (boundary k, boundary (k + 1)));
    rows;
  }

let by_nnz ~parts matrix =
  if parts < 1 then invalid_arg "Partition.by_nnz: parts must be >= 1";
  let rows = Sparse.rows matrix in
  let total = Sparse.nnz matrix in
  if total = 0 then uniform ~parts ~rows
  else begin
    let offsets = Sparse.row_offsets matrix in
    (* boundary k = first row whose cumulative nnz reaches k*total/parts;
       offsets is non-decreasing, so a binary search per boundary. *)
    let boundary k =
      if k = 0 then 0
      else if Int.equal k parts then rows
      else begin
        let target = k * total / parts in
        let lo = ref 0 and hi = ref rows in
        (* invariant: offsets.(!lo) < target... searching smallest r with
           offsets.(r) >= target. *)
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if offsets.(mid) >= target then hi := mid else lo := mid + 1
        done;
        !lo
      end
    in
    let bounds = Array.init (parts + 1) boundary in
    (* Monotonicity holds because the targets are increasing, but two
       boundaries can coincide on a dense row; the resulting empty
       ranges are legal and skipped by the kernels. *)
    { ranges = Array.init parts (fun k -> (bounds.(k), bounds.(k + 1))); rows }
  end

(* Worst-case load ratio of the partition: parts * max_part_nnz /
   total_nnz, 1.0 = perfectly balanced. Recorded as a running maximum
   so a long run surfaces its worst split. *)
let record_imbalance partition matrix =
  let parts = Array.length partition.ranges in
  let total = Sparse.nnz matrix in
  if total > 0 && parts > 1 then begin
    let offsets = Sparse.row_offsets matrix in
    let worst = ref 0 in
    Array.iter
      (fun (lo, hi) -> worst := max !worst (offsets.(hi) - offsets.(lo)))
      partition.ranges;
    Mrm_obs.Metrics.observe_max m_imbalance
      (float_of_int (parts * !worst) /. float_of_int total)
  end;
  partition

let of_pool_for ~jobs matrix =
  let rows = Sparse.rows matrix in
  let parts = max 1 (min (max 1 rows) (4 * jobs)) in
  record_imbalance (by_nnz ~parts matrix) matrix

let pinned ~jobs matrix =
  if jobs < 1 then invalid_arg "Partition.pinned: jobs must be >= 1";
  (* Exactly one range per party — the barrier protocol of
     [Pool.run_pinned] requires parts = parties <= jobs, and every
     party must own a range (possibly empty) so all of them keep
     meeting the barrier. No 4x slack: pinned ranges are not
     rescheduled, balance comes entirely from the nnz split. *)
  record_imbalance (by_nnz ~parts:jobs matrix) matrix

let of_ranges ~rows ranges =
  if rows < 0 then invalid_arg "Partition.of_ranges: negative rows";
  { ranges = Array.copy ranges; rows }

let pp ppf p =
  Format.fprintf ppf "@[<h>partition %d rows in %d part(s):" p.rows
    (Array.length p.ranges);
  Array.iter (fun (lo, hi) -> Format.fprintf ppf " [%d,%d)" lo hi) p.ranges;
  Format.fprintf ppf "@]"
