(** Structured diagnostics for the static model-verification layer.

    Every finding of {!Check} (and of the [mrm2 lint] front end) is a
    value of type {!t}: a severity, a stable machine-readable code
    ([MRM0xx] — see {!Check.code_table} for the registry), a
    human-readable message, and optional key/value context (state
    indices, offending values) so tools never have to parse the prose.

    Renderings: a terse human line ({!pp}), an S-expression
    ({!to_sexp}), and JSON ({!to_json}); whole-report variants
    aggregate a list. No external dependencies — both machine formats
    are emitted by hand so the library stays pure OCaml. *)

type severity = Error | Warning | Info

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val compare_severity : severity -> severity -> int
(** Orders [Error > Warning > Info] (most severe first when used with
    [List.sort]). *)

type t = {
  severity : severity;
  code : string;  (** stable code, e.g. ["MRM004"] *)
  message : string;  (** human-readable, one line *)
  context : (string * string) list;
      (** machine-readable details, e.g. [("state", "3"); ("value", "-0.5")] *)
}

val make : severity -> code:string -> ?context:(string * string) list ->
  string -> t

val error : code:string -> ?context:(string * string) list -> string -> t
val warning : code:string -> ?context:(string * string) list -> string -> t
val info : code:string -> ?context:(string * string) list -> string -> t

val errors : t list -> t list
(** The [Error]-severity subset, in order. *)

val has_errors : t list -> bool
val count : severity -> t list -> int

val by_severity : t list -> t list
(** Stable sort, most severe first. *)

val codes : t list -> string list
(** Distinct codes present, in first-appearance order. *)

val with_location : file:string -> ?line:int -> ?col:int -> t -> t
(** Attach a source location, stored under the well-known context keys
    ["file"], ["line"] and ["col"] (replacing any previous ones) so the
    sexp/json renderings carry it without a schema change. Used by the
    source-level analyzer ([Mrm_analysis]) whose findings point at
    OCaml source, and honoured by {!to_github}. *)

val location : t -> (string * int option * int option) option
(** [(file, line, col)] when the context carries a location. *)

val pp : Format.formatter -> t -> unit
(** [error MRM004: row 2 sums to 0.5 (not 0) [row=2 sum=0.5]]. *)

val pp_report : Format.formatter -> t list -> unit
(** One diagnostic per line, most severe first, followed by a summary
    line ([N errors, M warnings, K notes]). Prints [no findings] on the
    empty list. *)

val to_sexp : t -> string
(** [(diagnostic (severity error) (code MRM004) (message "...") (context (row 2) (sum 0.5)))] *)

val to_json : t -> string
(** [{"severity":"error","code":"MRM004","message":"...","context":{"row":"2","sum":"0.5"}}] *)

val to_github : ?file:string -> t -> string
(** A GitHub Actions workflow command
    ([::error file=...,line=...,title=CODE::CODE: message]) so CI runs
    surface findings as inline annotations. The location comes from
    {!location} when present, falling back to [?file]; [Info] renders
    as [notice]. Newlines, [%], and the property delimiters are escaped
    per the workflow-command spec. *)

val report_to_sexp : t list -> string
val report_to_json : t list -> string

val report_to_github : ?file:string -> t list -> string
(** One {!to_github} line per diagnostic, most severe first. *)
