module Sparse = Mrm_linalg.Sparse

type components = { count : int; component : int array }

(* Iterative Tarjan with an explicit call stack of (vertex, next-child)
   frames; the recursive formulation overflows the OCaml stack around
   ~10^5 vertices for chain-shaped graphs, which is exactly the shape of
   the paper's birth-death examples. *)
let of_successors n succ =
  let adjacency = Array.init n (fun v -> Array.of_list (succ v)) in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let tarjan_stack = ref [] in
  let next_index = ref 0 in
  let count = ref 0 in
  let visit v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    tarjan_stack := v :: !tarjan_stack;
    on_stack.(v) <- true
  in
  let call = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      visit root;
      Stack.push (root, ref 0) call;
      while not (Stack.is_empty call) do
        let v, child = Stack.top call in
        if !child < Array.length adjacency.(v) then begin
          let w = adjacency.(v).(!child) in
          incr child;
          if index.(w) < 0 then begin
            visit w;
            Stack.push (w, ref 0) call
          end
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop call);
          if lowlink.(v) = index.(v) then begin
            let closing = ref true in
            while !closing do
              match !tarjan_stack with
              | w :: rest ->
                  tarjan_stack := rest;
                  on_stack.(w) <- false;
                  component.(w) <- !count;
                  if w = v then closing := false
              | [] -> assert false
            done;
            incr count
          end;
          match Stack.top_opt call with
          | Some (parent, _) ->
              lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | None -> ()
        end
      done
    end
  done;
  { count = !count; component }

let successor_lists m =
  let n = Sparse.rows m in
  if Sparse.cols m <> n then invalid_arg "Scc: matrix must be square";
  let succ = Array.make n [] in
  Sparse.iter m (fun i j v -> if i <> j && v > 0. then succ.(i) <- j :: succ.(i));
  Array.map List.rev succ

let of_sparse m =
  let succ = successor_lists m in
  of_successors (Array.length succ) (fun v -> succ.(v))

let reachable m ~from =
  let succ = successor_lists m in
  let n = Array.length succ in
  let seen = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Scc.reachable: vertex out of range";
      if not seen.(v) then begin
        seen.(v) <- true;
        Queue.add v queue
      end)
    from;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      succ.(v)
  done;
  seen

let absorbing_states m =
  let succ = successor_lists m in
  let acc = ref [] in
  for v = Array.length succ - 1 downto 0 do
    if succ.(v) = [] then acc := v :: !acc
  done;
  !acc

let closed_components m { count; component } =
  let open_ = Array.make count false in
  Sparse.iter m (fun i j v ->
      if i <> j && v > 0. && component.(i) <> component.(j) then
        open_.(component.(i)) <- true);
  let acc = ref [] in
  for c = count - 1 downto 0 do
    if not open_.(c) then acc := c :: !acc
  done;
  !acc
