module Sparse = Mrm_linalg.Sparse
module Poisson = Mrm_ctmc.Poisson
module Special = Mrm_util.Special
module D = Diagnostics

type data = {
  states : int;
  q_matrix : Sparse.t;
  rates : float array;
  variances : float array;
  initial : float array;
}

let data ~q_matrix ~rates ~variances ~initial =
  { states = Sparse.rows q_matrix; q_matrix; rates; variances; initial }

let of_triplets ~states ~transitions ~rates ~variances ~initial =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= states || j < 0 || j >= states then
        invalid_arg
          (Printf.sprintf "Check.of_triplets: transition (%d, %d) out of [0, %d)"
             i j states))
    transitions;
  let exits = Array.make states 0. in
  let off_diagonal = List.filter (fun (i, j, v) -> i <> j && v <> 0.) transitions in
  List.iter (fun (i, _, v) -> exits.(i) <- exits.(i) +. v) off_diagonal;
  let diagonal =
    List.filter
      (fun (_, _, v) -> v <> 0.)
      (List.init states (fun i -> (i, i, -.exits.(i))))
  in
  let q_matrix =
    Sparse.of_triplets ~rows:states ~cols:states (diagonal @ off_diagonal)
  in
  { states; q_matrix; rates; variances; initial }

type config = {
  t : float;
  order : int;
  eps : float;
  q : float option;
  d : float option;
  jobs : int;
}

let default_config =
  { t = 1.; order = 3; eps = 1e-9; q = None; d = None; jobs = 1 }

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                       *)

let fmt = Printf.sprintf
let fg v = fmt "%g" v
let fi v = string_of_int v

(* Mirrors the solver's choices (Randomization): uniformization rate
   q = max_i |q_ii|, drift shift making all rates non-negative, and the
   minimal d keeping R' and S' substochastic. *)
let chain_rate m =
  let q = ref 0. in
  Sparse.iter m (fun i j v -> if i = j then q := Float.max !q (abs_float v));
  !q

let shift_of rates = Float.min 0. (Array.fold_left Float.min infinity rates)

let default_d ~q ~rates ~variances =
  if q <= 0. then 0.
  else begin
    let shift = shift_of rates in
    let max_shifted =
      Array.fold_left (fun acc r -> Float.max acc (r -. shift)) 0. rates
    in
    let max_std =
      sqrt (Array.fold_left Float.max 0. variances)
    in
    Float.max (max_shifted /. q) (max_std /. sqrt q)
  end

(* ------------------------------------------------------------------ *)
(* Passes                                                               *)

let check_dimensions { states; q_matrix; rates; variances; initial } =
  let finding what got =
    D.error ~code:"MRM005"
      ~context:[ ("expected", fi states); ("got", fi got) ]
      (fmt "%s has dimension %d, expected %d" what got states)
  in
  List.concat
    [
      (if Sparse.rows q_matrix <> states then
         [ finding "generator row count" (Sparse.rows q_matrix) ]
       else []);
      (if Sparse.cols q_matrix <> Sparse.rows q_matrix then
         [
           D.error ~code:"MRM005"
             ~context:
               [
                 ("rows", fi (Sparse.rows q_matrix));
                 ("cols", fi (Sparse.cols q_matrix));
               ]
             (fmt "generator is %d x %d, not square" (Sparse.rows q_matrix)
                (Sparse.cols q_matrix));
         ]
       else []);
      (if Array.length rates <> states then
         [ finding "rate vector" (Array.length rates) ]
       else []);
      (if Array.length variances <> states then
         [ finding "variance vector" (Array.length variances) ]
       else []);
      (if Array.length initial <> states then
         [ finding "initial vector" (Array.length initial) ]
       else []);
    ]

let check_generator ?(tol = 1e-9) { q_matrix; _ } =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  Sparse.iter q_matrix (fun i j v ->
      if not (Float.is_finite v) then
        add
          (D.error ~code:"MRM001"
             ~context:[ ("row", fi i); ("col", fi j); ("value", fg v) ]
             (fmt "non-finite generator entry %g at (%d, %d)" v i j))
      else if i = j then begin
        if v > 0. then
          add
            (D.error ~code:"MRM003"
               ~context:[ ("state", fi i); ("value", fg v) ]
               (fmt "positive diagonal entry %g at state %d" v i))
      end
      else if v < 0. then
        add
          (D.error ~code:"MRM002"
             ~context:[ ("row", fi i); ("col", fi j); ("value", fg v) ]
             (fmt "negative off-diagonal rate %g at (%d, %d)" v i j)));
  let q = chain_rate q_matrix in
  let tolerance = tol *. Float.max 1. q in
  Array.iteri
    (fun i s ->
      if Float.is_finite s && abs_float s > tolerance then
        add
          (D.error ~code:"MRM004"
             ~context:
               [ ("row", fi i); ("sum", fg s); ("tolerance", fg tolerance) ]
             (fmt "row %d sums to %g, not 0 (tolerance %g)" i s tolerance)))
    (Sparse.row_sums q_matrix);
  List.rev !acc

let check_rewards { rates; variances; _ } =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r) then
        add
          (D.error ~code:"MRM010"
             ~context:[ ("state", fi i); ("value", fg r) ]
             (fmt "non-finite drift %g at state %d" r i)))
    rates;
  Array.iteri
    (fun i v ->
      if not (Float.is_finite v) then
        add
          (D.error ~code:"MRM012"
             ~context:[ ("state", fi i); ("value", fg v) ]
             (fmt "non-finite variance %g at state %d" v i))
      else if v < 0. then
        add
          (D.error ~code:"MRM011"
             ~context:[ ("state", fi i); ("value", fg v) ]
             (fmt "negative variance %g at state %d (sigma_i^2 >= 0 required)" v
                i)))
    variances;
  List.rev !acc

let check_initial { initial; _ } =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  Array.iteri
    (fun i p ->
      if (not (Float.is_finite p)) || p < 0. || p > 1. then
        add
          (D.error ~code:"MRM020"
             ~context:[ ("state", fi i); ("value", fg p) ]
             (fmt "initial probability %g at state %d outside [0, 1]" p i)))
    initial;
  let total = Array.fold_left ( +. ) 0. initial in
  if Float.is_finite total && abs_float (total -. 1.) > 1e-9 then
    add
      (D.error ~code:"MRM021"
         ~context:[ ("sum", fg total) ]
         (fmt "initial probabilities sum to %g, not 1" total));
  List.rev !acc

let sample_states states =
  let shown = List.filteri (fun i _ -> i < 5) states in
  let listed = String.concat ", " (List.map string_of_int shown) in
  if List.length states > 5 then listed ^ ", ..." else listed

let check_structure { states; q_matrix; initial; _ } =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let support = ref [] in
  for i = states - 1 downto 0 do
    if i < Array.length initial && initial.(i) > 0. then support := i :: !support
  done;
  (if !support <> [] then begin
     let seen = Scc.reachable q_matrix ~from:!support in
     let unreachable = ref [] in
     for i = states - 1 downto 0 do
       if not seen.(i) then unreachable := i :: !unreachable
     done;
     match !unreachable with
     | [] -> ()
     | states ->
         add
           (D.warning ~code:"MRM030"
              ~context:
                [
                  ("count", fi (List.length states));
                  ("states", sample_states states);
                ]
              (fmt "%d state(s) unreachable from the initial support (%s)"
                 (List.length states) (sample_states states)))
   end);
  (match Scc.absorbing_states q_matrix with
  | [] -> ()
  | states ->
      add
        (D.warning ~code:"MRM031"
           ~context:
             [
               ("count", fi (List.length states));
               ("states", sample_states states);
             ]
           (fmt
              "%d absorbing state(s) (%s): accumulated-reward moments grow \
               polynomially once absorbed"
              (List.length states) (sample_states states))));
  let components = Scc.of_sparse q_matrix in
  if components.Scc.count > 1 then begin
    let closed = Scc.closed_components q_matrix components in
    add
      (D.info ~code:"MRM032"
         ~context:
           [
             ("classes", fi components.Scc.count);
             ("closed", fi (List.length closed));
           ]
         (fmt
            "chain is reducible: %d communicating classes (%d closed); no \
             unique stationary distribution"
            components.Scc.count (List.length closed)))
  end;
  List.rev !acc

let check_uniformization ?(tol = 1e-9) ?(config = default_config)
    ({ q_matrix; rates; variances; _ } as _data) =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let q_chain = chain_rate q_matrix in
  let q = Option.value config.q ~default:q_chain in
  if not (Float.is_finite q) then
    add
      (D.error ~code:"MRM044"
         ~context:[ ("q", fg q) ]
         (fmt "uniformization rate %g is not finite" q))
  else if q = 0. then ()
    (* Transition-free model: the solvers use the closed Brownian form;
       there is nothing to uniformize. *)
  else begin
    if q < q_chain *. (1. -. tol) then
      add
        (D.error ~code:"MRM040"
           ~context:[ ("q", fg q); ("max_exit_rate", fg q_chain) ]
           (fmt
              "uniformization rate %g below max exit rate %g: Q' = Q/q + I \
               has negative diagonal entries"
              q q_chain));
    Array.iteri
      (fun i s ->
        let row_sum' = (s /. q) +. 1. in
        if Float.is_finite row_sum' && row_sum' > 1. +. tol then
          add
            (D.error ~code:"MRM041"
               ~context:[ ("row", fi i); ("sum", fg row_sum') ]
               (fmt "uniformized row %d sums to %g > 1 (not substochastic)" i
                  row_sum')))
      (Sparse.row_sums q_matrix);
    let d = Option.value config.d ~default:(default_d ~q ~rates ~variances) in
    if not (Float.is_finite d) then
      add
        (D.error ~code:"MRM044"
           ~context:[ ("d", fg d) ]
           (fmt "reward scaling constant %g is not finite" d))
    else if d > 0. then begin
      let shift = shift_of rates in
      Array.iteri
        (fun i r ->
          let r' = (r -. shift) /. (q *. d) in
          if not (Float.is_finite r') then
            add
              (D.error ~code:"MRM044"
                 ~context:[ ("state", fi i); ("value", fg r') ]
                 (fmt "scaled drift at state %d is not finite" i))
          else if r' > 1. +. tol then
            add
              (D.error ~code:"MRM042"
                 ~context:[ ("state", fi i); ("value", fg r'); ("d", fg d) ]
                 (fmt
                    "R' not substochastic: r_%d' = %g > 1 for d = %g \
                     (Lemma 2 bound invalid)"
                    i r' d)))
        rates;
      Array.iteri
        (fun i v ->
          let s' = v /. (q *. d *. d) in
          if not (Float.is_finite s') then
            add
              (D.error ~code:"MRM044"
                 ~context:[ ("state", fi i); ("value", fg s') ]
                 (fmt "scaled variance at state %d is not finite" i))
          else if s' > 1. +. tol then
            add
              (D.error ~code:"MRM043"
                 ~context:[ ("state", fi i); ("value", fg s'); ("d", fg d) ]
                 (fmt
                    "S' not substochastic: s_%d' = %g > 1 for d = %g \
                     (Lemma 2 bound invalid)"
                    i s' d)))
        variances
    end
  end;
  List.rev !acc

(* Theorem-4 truncation point for the requested precision; mirrors
   Randomization.truncation_point. Above [lambda_direct_warning] we skip
   the quantile search and warn from [G ~ lambda] directly. *)
let g_warning_threshold = 2_000_000
let lambda_direct_warning = 5e7

let estimate_truncation ~d ~lambda ~order ~eps =
  if order = 0 then Poisson.tail_quantile ~lambda ~log_eps:(log eps)
  else begin
    let log_prefactor =
      log 2.
      +. (float_of_int order *. log d)
      +. Special.log_factorial order
      +. (float_of_int order *. log lambda)
    in
    let log_eps = log eps -. log_prefactor in
    let m = Poisson.tail_quantile ~lambda ~log_eps in
    max 1 (m + order - 1)
  end

(* The paper's large example has 200,001 states; anything within a
   couple of orders of that only saturates one core for no reason when
   the row-parallel engine is left off. *)
let paper_scale_states = 10_000

let check_conditioning ?(config = default_config)
    ({ states; q_matrix; rates; variances; _ } as _data) =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  if states >= paper_scale_states && config.jobs <= 1 then
    add
      (D.info ~code:"MRM053"
         ~context:[ ("states", fi states); ("jobs", fi config.jobs) ]
         (fmt
            "paper-scale model (%d states, threshold %d) about to be solved \
             with jobs = 1; the G = O(qt) mat-vec sweep is row-parallel — \
             set --jobs or MRM2_JOBS to use the domain pool"
            states paper_scale_states));
  if (not (Float.is_finite config.t)) || config.t < 0. then
    add
      (D.error ~code:"MRM060"
         ~context:[ ("t", fg config.t) ]
         (fmt "accumulation horizon t = %g must be finite and >= 0" config.t));
  if config.order < 0 then
    add
      (D.error ~code:"MRM060"
         ~context:[ ("order", fi config.order) ]
         (fmt "moment order %d must be >= 0" config.order));
  if (not (Float.is_finite config.eps)) || config.eps <= 0. then
    add
      (D.error ~code:"MRM060"
         ~context:[ ("eps", fg config.eps) ]
         (fmt "precision eps = %g must be finite and > 0" config.eps))
  else if config.eps < 1e-15 then
    add
      (D.warning ~code:"MRM061"
         ~context:[ ("eps", fg config.eps) ]
         (fmt
            "eps = %g is below attainable double precision; the truncation \
             bound will cost iterations without gaining accuracy"
            config.eps));
  let shift = shift_of rates in
  if shift < 0. then
    add
      (D.info ~code:"MRM052"
         ~context:[ ("shift", fg shift) ]
         (fmt
            "negative drifts present: the solver shifts all rates by %g \
             (results are mapped back exactly)"
            (-.shift)));
  (* Scale spread of the reward structure: the moments mix r_i and
     sigma_i contributions, so >~8 orders of magnitude between the
     smallest and largest non-zero scale loses digits. *)
  let scales = ref [] in
  Array.iter
    (fun r ->
      let m = abs_float (r -. shift) in
      if m > 0. && Float.is_finite m then scales := m :: !scales)
    rates;
  Array.iter
    (fun v ->
      if v > 0. && Float.is_finite v then scales := sqrt v :: !scales)
    variances;
  (match !scales with
  | [] -> ()
  | first :: rest ->
      let lo = List.fold_left Float.min first rest in
      let hi = List.fold_left Float.max first rest in
      if hi /. lo > 1e8 then
        add
          (D.warning ~code:"MRM051"
             ~context:[ ("min_scale", fg lo); ("max_scale", fg hi) ]
             (fmt
                "reward scales span %.1f orders of magnitude (%g .. %g); \
                 expect precision loss in high-order moments"
                (log10 (hi /. lo)) lo hi)));
  (* Truncation-point explosion (the G = O(qt) cost of Theorem 4). *)
  let q = Option.value config.q ~default:(chain_rate q_matrix) in
  let valid_time = Float.is_finite config.t && config.t >= 0. in
  let valid_eps = Float.is_finite config.eps && config.eps > 0. in
  if q > 0. && valid_time && valid_eps && config.order >= 0 then begin
    let lambda = q *. config.t in
    if lambda > lambda_direct_warning then
      add
        (D.warning ~code:"MRM050"
           ~context:[ ("qt", fg lambda) ]
           (fmt
              "q t = %g: the Theorem-4 truncation point is of the same \
               order; the solve needs ~%g sparse matrix-vector products per \
               moment order"
              lambda lambda))
    else begin
      let d =
        Option.value config.d ~default:(default_d ~q ~rates ~variances)
      in
      if lambda > 0. && d > 0. && Float.is_finite d then begin
        let g =
          estimate_truncation ~d ~lambda ~order:config.order ~eps:config.eps
        in
        if g > g_warning_threshold then
          add
            (D.warning ~code:"MRM050"
               ~context:[ ("g", fi g); ("qt", fg lambda) ]
               (fmt
                  "truncation point G = %d for q t = %g: the solve needs %d \
                   sparse matrix-vector products per moment order"
                  g lambda g))
      end
    end
  end;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Stationary (MMBM) applicability: degenerate drift partitions that
   make the invariant-density solver (Mrm_mmbm) reject or degrade.
   Advisory only — the transient solvers are unaffected — so every
   finding is a warning and the pass is opt-in ([mrm2 lint
   --stationary]). Defensive about malformed inputs: structural
   problems are the other passes' job, so this one stays silent when
   the generator cannot even be built. *)

let check_stationary data =
  let { q_matrix; rates; variances; _ } = data in
  match Mrm_ctmc.Generator.of_sparse q_matrix with
  | exception Invalid_argument _ -> []
  | g -> (
      match Mrm_ctmc.Stationary.gth g with
      | exception Invalid_argument _ -> []
      | pi ->
          let acc = ref [] in
          let add d = acc := d :: !acc in
          let zero_variance = ref [] in
          Array.iteri
            (fun i v -> if v <= 0. then zero_variance := i :: !zero_variance)
            variances;
          (match List.rev !zero_variance with
          | [] -> ()
          | states ->
              add
                (D.warning ~code:"MRM062"
                   ~context:
                     [
                       ("count", fi (List.length states));
                       ( "states",
                         String.concat ","
                           (List.map fi
                              (List.filteri (fun k _ -> k < 8) states)) );
                     ]
                   (fmt
                      "%d state(s) have zero variance: mrm2 stationary needs \
                       --regularize for this model"
                      (List.length states))));
          let mean_drift = ref 0. in
          Array.iteri
            (fun i r -> mean_drift := !mean_drift +. (pi.(i) *. r))
            rates;
          let scale =
            Array.fold_left (fun m r -> Float.max m (abs_float r)) 1. rates
          in
          if abs_float !mean_drift <= 1e-12 *. scale then
            add
              (D.warning ~code:"MRM064"
                 ~context:[ ("mean_drift", fg !mean_drift) ]
                 "stationary mean drift is zero: the regulated level is null \
                  recurrent (no stationary density)")
          else if !mean_drift > 0. then
            add
              (D.warning ~code:"MRM063"
                 ~context:[ ("mean_drift", fg !mean_drift) ]
                 (fmt
                    "stationary mean drift %g is positive: mrm2 stationary \
                     needs --drain > %g for this model"
                    !mean_drift !mean_drift));
          List.rev !acc)

let check ?tol ?config data =
  let dims = check_dimensions data in
  let findings =
    if dims <> [] then dims @ check_generator ?tol data
    else
      List.concat
        [
          check_generator ?tol data;
          check_rewards data;
          check_initial data;
          check_structure data;
          check_uniformization ?tol ?config data;
          check_conditioning ?config data;
        ]
  in
  D.by_severity findings

exception Failed of D.t list

let () =
  Printexc.register_printer (function
    | Failed report ->
        Some
          (fmt "Mrm_check.Check.Failed: %d error(s) [%s]"
             (List.length (D.errors report))
             (String.concat ", " (D.codes (D.errors report))))
    | _ -> None)

let validate_exn ?tol ?config data =
  let report = check ?tol ?config data in
  if D.has_errors report then raise (Failed report)

let code_table =
  [
    ("MRM001", D.Error, "non-finite entry in the generator matrix");
    ("MRM002", D.Error, "negative off-diagonal rate in the generator");
    ("MRM003", D.Error, "positive diagonal entry in the generator");
    ("MRM004", D.Error, "generator row sum not (numerically) zero");
    ("MRM005", D.Error, "dimension mismatch between model components");
    ("MRM010", D.Error, "non-finite reward drift");
    ("MRM011", D.Error, "negative reward variance");
    ("MRM012", D.Error, "non-finite reward variance");
    ("MRM020", D.Error, "initial probability outside [0, 1] or non-finite");
    ("MRM021", D.Error, "initial probabilities do not sum to 1");
    ("MRM030", D.Warning, "states unreachable from the initial support");
    ("MRM031", D.Warning, "absorbing states present");
    ("MRM032", D.Info, "reducible chain (multiple communicating classes)");
    ("MRM040", D.Error, "uniformization rate below the max exit rate");
    ("MRM041", D.Error, "uniformized generator Q' not substochastic");
    ("MRM042", D.Error, "scaled drift matrix R' not substochastic");
    ("MRM043", D.Error, "scaled variance matrix S' not substochastic");
    ("MRM044", D.Error, "non-finite uniformized quantity");
    ("MRM050", D.Warning, "Poisson truncation point impractically large");
    ("MRM051", D.Warning, "reward scales span many orders of magnitude");
    ("MRM052", D.Info, "drift shift applied to handle negative rates");
    ("MRM053", D.Info, "paper-scale model solved sequentially (jobs = 1)");
    ("MRM060", D.Error, "invalid solver configuration (t, order or eps)");
    ("MRM061", D.Warning, "eps below attainable double precision");
    ("MRM062", D.Error, "zero-variance states: stationary solver needs \
                         --regularize (warning under mrm2 lint --stationary)");
    ("MRM063", D.Error, "positive mean drift: no stationary density without \
                         --drain (warning under mrm2 lint --stationary)");
    ("MRM064", D.Error, "zero mean drift: regulated level is null recurrent \
                         (warning under mrm2 lint --stationary)");
    ("MRM065", D.Error, "cyclic reduction did not converge");
    ("MRM066", D.Error, "singular pivot or defective boundary system in the \
                         stationary solver");
    ("MRM067", D.Warning, "variance floor (--regularize) applied");
    ("MRM068", D.Warning, "stationary phase marginal disagrees with the CTMC \
                           stationary vector (--validate)");
    ("MRM069", D.Error, "unknown batch job kind");
    ("MRM090", D.Error, "model file parse error (emitted by mrm2 lint)");
  ]
