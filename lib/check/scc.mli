(** Communication structure of the transition graph.

    Tarjan's strongly-connected-components algorithm, implemented
    iteratively so it handles the paper's Table-2 regime
    ([N = 200,001] states) without blowing the OCaml call stack, plus
    the two reachability questions the model checker asks: which states
    are reachable from the initial support, and which states (or whole
    communicating classes) are absorbing.

    The graph is read off a sparse generator matrix: there is an edge
    [i -> j] whenever [i <> j] and [q_ij > 0]. *)

type components = {
  count : int;  (** number of strongly connected components *)
  component : int array;
      (** [component.(v)] is the component id of vertex [v]; ids are
          assigned in reverse topological order of the condensation
          (an edge between components always goes from a higher id to a
          lower id). *)
}

val of_successors : int -> (int -> int list) -> components
(** [of_successors n succ] for the graph on vertices [0 .. n-1] with
    edge lists [succ v]. *)

val of_sparse : Mrm_linalg.Sparse.t -> components
(** Components of the directed graph induced by positive off-diagonal
    entries. @raise Invalid_argument if the matrix is not square. *)

val reachable : Mrm_linalg.Sparse.t -> from:int list -> bool array
(** Vertices reachable (in zero or more steps) from any vertex of
    [from], by breadth-first search over positive off-diagonal
    entries. *)

val absorbing_states : Mrm_linalg.Sparse.t -> int list
(** States with no positive off-diagonal entry in their row (no way
    out), ascending. *)

val closed_components : Mrm_linalg.Sparse.t -> components -> int list
(** Component ids with no edge leaving the component — the recurrent
    (closed communicating) classes of the chain, ascending. A CTMC has
    a unique stationary distribution iff exactly one of these exists
    and is reachable. *)
