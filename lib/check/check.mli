(** Static verification of second-order MRM inputs — every invariant the
    solvers assume, checked {e without} solving anything.

    The paper's randomization solver (Theorems 3/4) multiplies
    non-negative substochastic matrices by non-negative vectors; its
    a-priori error bound (eq. 11) is only valid when the inputs actually
    are a generator ([q_ij >= 0] off the diagonal, zero row sums), a
    reward structure ([sigma_i^2 >= 0], finite drifts) and a probability
    vector, and when the uniformized [Q' = Q/q + I], [R' = R/(q d)],
    [S' = S/(q d^2)] are substochastic for the chosen [q] and [d].
    Reachability matters too: states unreachable from the initial
    support waste work, and absorbing states change moment behaviour
    (arXiv:2105.00330 analyses exactly that regime).

    Checks operate on {!data} — raw, {e unvalidated} model components —
    so they can lint inputs that the validating constructors
    ({!Mrm_ctmc.Generator.of_sparse}, [Model.make]) would reject
    outright, and report {e all} findings with state indices instead of
    failing on the first.

    Diagnostics carry stable codes; {!code_table} is the registry. *)

type data = {
  states : int;
  q_matrix : Mrm_linalg.Sparse.t;  (** full generator, diagonal included *)
  rates : float array;  (** drift [r_i] per state *)
  variances : float array;  (** [sigma_i^2] per state *)
  initial : float array;  (** initial probability vector *)
}

val data :
  q_matrix:Mrm_linalg.Sparse.t ->
  rates:float array ->
  variances:float array ->
  initial:float array ->
  data
(** Convenience constructor; [states] is taken from the matrix row
    count. Performs no validation — that is the checks' job. *)

val of_triplets :
  states:int ->
  transitions:(int * int * float) list ->
  rates:float array ->
  variances:float array ->
  initial:float array ->
  data
(** Build [data] from off-diagonal rate triplets, filling the diagonal
    with negated row sums (the [Model_io] convention). Unlike
    {!Mrm_ctmc.Generator.of_triplets} this {e keeps} negative and
    out-of-range-clamped entries so the checks can report them;
    out-of-range indices raise [Invalid_argument] (they cannot be
    represented in a sparse matrix at all). *)

type config = {
  t : float;  (** accumulation horizon *)
  order : int;  (** highest moment order *)
  eps : float;  (** randomization truncation-error bound *)
  q : float option;  (** uniformization-rate override; default [max_i |q_ii|] *)
  d : float option;
      (** reward-scaling override; default the minimal [d] making [R'] and
          [S'] substochastic (the solver's choice) *)
  jobs : int;
      (** domain count the solve would run on ([--jobs] / [MRM2_JOBS];
          1 = sequential) — only used to flag paper-scale models left on
          a single core ([MRM053]) *)
}

val default_config : config
(** [t = 1., order = 3, eps = 1e-9, jobs = 1], no overrides. *)

(* ------------------------------------------------------------------ *)
(* Individual passes. Each returns an independent diagnostic list;      *)
(* [check] composes them.                                               *)

val check_dimensions : data -> Diagnostics.t list
(** [MRM005] when the matrix is not square or the array lengths disagree
    with [states]. When this fails, the index-based passes below are not
    safe to run — {!check} handles the sequencing. *)

val check_generator : ?tol:float -> data -> Diagnostics.t list
(** Generator validity: finiteness ([MRM001]), non-negative
    off-diagonals ([MRM002]), non-positive diagonal ([MRM003]), row sums
    zero within [tol * max (1, q)] ([MRM004], default [tol = 1e-9]).
    Every diagnostic names the offending state index and value. *)

val check_rewards : data -> Diagnostics.t list
(** Finite drifts ([MRM010]), non-negative ([MRM011]) and finite
    ([MRM012]) variances. *)

val check_initial : data -> Diagnostics.t list
(** Entries in [0, 1] and finite ([MRM020]); total mass 1 within 1e-9
    ([MRM021]). *)

val check_structure : data -> Diagnostics.t list
(** Reachability and communication structure (Tarjan SCC on positive
    off-diagonal entries): unreachable states ([MRM030], warning),
    absorbing states ([MRM031], warning — moment behaviour changes when
    the chain can get stuck), reducible chains ([MRM032], info, with the
    communicating-class count). *)

val check_uniformization : ?tol:float -> ?config:config -> data ->
  Diagnostics.t list
(** Substochasticity of the uniformized matrices for the chosen (or
    default) [q] and [d]: [q] at least the max exit rate ([MRM040]),
    row sums of [Q'] at most 1 ([MRM041]), [r_i'/(q d) <= 1] ([MRM042]),
    [sigma_i^2/(q d^2) <= 1] ([MRM043]), and a finiteness scan of the
    scaled quantities ([MRM044]). Skipped for transition-free models
    ([q = 0] — the solvers use a closed form there). *)

val check_conditioning : ?config:config -> data -> Diagnostics.t list
(** Solver-configuration sanity: invalid [t]/[order]/[eps] ([MRM060],
    error), a Theorem-4 truncation point so large the solve is
    impractical ([MRM050], warning, threshold ~2e6 iterations),
    reward scales spanning more than 8 orders of magnitude ([MRM051],
    warning), a negative-drift shift being applied ([MRM052], info),
    a paper-scale model (>= 10^4 states) about to be solved with
    [jobs = 1] when the row-parallel engine could be used ([MRM053],
    info, points at [--jobs]/[MRM2_JOBS]), and [eps] below attainable
    double precision ([MRM061], warning). *)

val check_stationary : data -> Diagnostics.t list
(** Stationary (MMBM) applicability, as warnings: zero-variance states
    that would make the level diffusion degenerate ([MRM062], needs
    [--regularize]), positive mean drift ([MRM063], needs [--drain]),
    and zero mean drift / null recurrence ([MRM064]). Opt-in — not part
    of {!check}; [mrm2 lint --stationary] adds it. Skipped when the
    generator is reducible (the core passes report that instead). *)

val check : ?tol:float -> ?config:config -> data -> Diagnostics.t list
(** All passes, in severity order. If {!check_dimensions} fails, only
    dimension and matrix-local generator findings are returned. *)

(* ------------------------------------------------------------------ *)

exception Failed of Diagnostics.t list
(** Raised by {!validate_exn}; the payload is the full report. The
    registered exception printer lists the failed error codes. *)

val validate_exn : ?tol:float -> ?config:config -> data -> unit
(** Run {!check}; raise {!Failed} if any [Error]-severity diagnostic is
    present (warnings and notes do not raise). *)

val code_table : (string * Diagnostics.severity * string) list
(** The registry of stable diagnostic codes: (code, worst-case severity,
    one-line description). [MRM090] (model-file parse error) is emitted
    by the [mrm2 lint] front end rather than by {!check}. *)
