type severity = Error | Warning | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  severity : severity;
  code : string;
  message : string;
  context : (string * string) list;
}

let make severity ~code ?(context = []) message =
  { severity; code; message; context }

let error ~code ?context message = make Error ~code ?context message
let warning ~code ?context message = make Warning ~code ?context message
let info ~code ?context message = make Info ~code ?context message

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let count s ds = List.length (List.filter (fun d -> d.severity = s) ds)

let by_severity ds =
  List.stable_sort (fun a b -> compare_severity a.severity b.severity) ds

let codes ds =
  List.fold_left
    (fun acc d -> if List.mem d.code acc then acc else d.code :: acc)
    [] ds
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Source locations. Diagnostics stay a flat record; a location is the
   well-known context keys "file"/"line"/"col", so every existing
   rendering (sexp, json) carries it for free and only the renderers
   that care (pp, GitHub annotations) treat it specially.              *)

let location_keys = [ "file"; "line"; "col" ]

let with_location ~file ?line ?col d =
  let loc =
    List.concat
      [
        [ ("file", file) ];
        (match line with Some l -> [ ("line", string_of_int l) ] | None -> []);
        (match col with Some c -> [ ("col", string_of_int c) ] | None -> []);
      ]
  in
  let rest = List.filter (fun (k, _) -> not (List.mem k location_keys)) d.context in
  { d with context = loc @ rest }

let location d =
  match List.assoc_opt "file" d.context with
  | None -> None
  | Some file ->
      let num key =
        Option.bind (List.assoc_opt key d.context) int_of_string_opt
      in
      Some (file, num "line", num "col")

let pp ppf d =
  Format.fprintf ppf "%s %s: %s" (severity_label d.severity) d.code d.message;
  if d.context <> [] then begin
    Format.fprintf ppf " [";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf ppf " ";
        Format.fprintf ppf "%s=%s" k v)
      d.context;
    Format.fprintf ppf "]"
  end

let pp_report ppf ds =
  match ds with
  | [] -> Format.fprintf ppf "no findings@."
  | _ ->
      List.iter (fun d -> Format.fprintf ppf "%a@." pp d) (by_severity ds);
      Format.fprintf ppf "%d errors, %d warnings, %d notes@." (count Error ds)
        (count Warning ds) (count Info ds)

(* ------------------------------------------------------------------ *)
(* Machine-readable renderings                                          *)

let sexp_atom s =
  let needs_quoting =
    s = ""
    || String.exists
         (fun c ->
           match c with
           | ' ' | '\t' | '\n' | '(' | ')' | '"' | ';' -> true
           | _ -> false)
         s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_sexp d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "(diagnostic (severity ";
  Buffer.add_string buf (severity_label d.severity);
  Buffer.add_string buf ") (code ";
  Buffer.add_string buf (sexp_atom d.code);
  Buffer.add_string buf ") (message ";
  Buffer.add_string buf (sexp_atom d.message);
  Buffer.add_string buf ")";
  if d.context <> [] then begin
    Buffer.add_string buf " (context";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf " (";
        Buffer.add_string buf (sexp_atom k);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (sexp_atom v);
        Buffer.add_char buf ')')
      d.context;
    Buffer.add_char buf ')'
  end;
  Buffer.add_char buf ')';
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"severity\":";
  Buffer.add_string buf (json_string (severity_label d.severity));
  Buffer.add_string buf ",\"code\":";
  Buffer.add_string buf (json_string d.code);
  Buffer.add_string buf ",\"message\":";
  Buffer.add_string buf (json_string d.message);
  if d.context <> [] then begin
    Buffer.add_string buf ",\"context\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (json_string k);
        Buffer.add_char buf ':';
        Buffer.add_string buf (json_string v))
      d.context;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let report_to_sexp ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "(report";
  List.iter
    (fun d ->
      Buffer.add_string buf "\n ";
      Buffer.add_string buf (to_sexp d))
    (by_severity ds);
  Buffer.add_string buf ")";
  Buffer.contents buf

(* GitHub Actions workflow commands: one annotation per diagnostic.
   Newlines and the command delimiters must be URL-style escaped per
   the workflow-command spec; Info maps to "notice". *)

let github_escape ~in_property s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | ':' when in_property -> Buffer.add_string buf "%3A"
      | ',' when in_property -> Buffer.add_string buf "%2C"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_github ?file d =
  let command =
    match d.severity with
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "notice"
  in
  let file, line, col =
    match location d with
    | Some (f, line, col) -> (Some f, line, col)
    | None -> (file, None, None)
  in
  let props =
    List.concat
      [
        (match file with
        | Some f -> [ ("file", github_escape ~in_property:true f) ]
        | None -> []);
        (match line with
        | Some l -> [ ("line", string_of_int l) ]
        | None -> []);
        (match col with Some c -> [ ("col", string_of_int c) ] | None -> []);
        [ ("title", github_escape ~in_property:true d.code) ];
      ]
  in
  Printf.sprintf "::%s %s::%s: %s" command
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) props))
    d.code
    (github_escape ~in_property:false d.message)

let report_to_github ?file ds =
  String.concat "\n" (List.map (to_github ?file) (by_severity ds))

let report_to_json ds =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (to_json d))
    (by_severity ds);
  Buffer.add_char buf ']';
  Buffer.contents buf
