type severity = Error | Warning | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  severity : severity;
  code : string;
  message : string;
  context : (string * string) list;
}

let make severity ~code ?(context = []) message =
  { severity; code; message; context }

let error ~code ?context message = make Error ~code ?context message
let warning ~code ?context message = make Warning ~code ?context message
let info ~code ?context message = make Info ~code ?context message

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let count s ds = List.length (List.filter (fun d -> d.severity = s) ds)

let by_severity ds =
  List.stable_sort (fun a b -> compare_severity a.severity b.severity) ds

let codes ds =
  List.fold_left
    (fun acc d -> if List.mem d.code acc then acc else d.code :: acc)
    [] ds
  |> List.rev

let pp ppf d =
  Format.fprintf ppf "%s %s: %s" (severity_label d.severity) d.code d.message;
  if d.context <> [] then begin
    Format.fprintf ppf " [";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf ppf " ";
        Format.fprintf ppf "%s=%s" k v)
      d.context;
    Format.fprintf ppf "]"
  end

let pp_report ppf ds =
  match ds with
  | [] -> Format.fprintf ppf "no findings@."
  | _ ->
      List.iter (fun d -> Format.fprintf ppf "%a@." pp d) (by_severity ds);
      Format.fprintf ppf "%d errors, %d warnings, %d notes@." (count Error ds)
        (count Warning ds) (count Info ds)

(* ------------------------------------------------------------------ *)
(* Machine-readable renderings                                          *)

let sexp_atom s =
  let needs_quoting =
    s = ""
    || String.exists
         (fun c ->
           match c with
           | ' ' | '\t' | '\n' | '(' | ')' | '"' | ';' -> true
           | _ -> false)
         s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_sexp d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "(diagnostic (severity ";
  Buffer.add_string buf (severity_label d.severity);
  Buffer.add_string buf ") (code ";
  Buffer.add_string buf (sexp_atom d.code);
  Buffer.add_string buf ") (message ";
  Buffer.add_string buf (sexp_atom d.message);
  Buffer.add_string buf ")";
  if d.context <> [] then begin
    Buffer.add_string buf " (context";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf " (";
        Buffer.add_string buf (sexp_atom k);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (sexp_atom v);
        Buffer.add_char buf ')')
      d.context;
    Buffer.add_char buf ')'
  end;
  Buffer.add_char buf ')';
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"severity\":";
  Buffer.add_string buf (json_string (severity_label d.severity));
  Buffer.add_string buf ",\"code\":";
  Buffer.add_string buf (json_string d.code);
  Buffer.add_string buf ",\"message\":";
  Buffer.add_string buf (json_string d.message);
  if d.context <> [] then begin
    Buffer.add_string buf ",\"context\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (json_string k);
        Buffer.add_char buf ':';
        Buffer.add_string buf (json_string v))
      d.context;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let report_to_sexp ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "(report";
  List.iter
    (fun d ->
      Buffer.add_string buf "\n ";
      Buffer.add_string buf (to_sexp d))
    (by_severity ds);
  Buffer.add_string buf ")";
  Buffer.contents buf

let report_to_json ds =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (to_json d))
    (by_severity ds);
  Buffer.add_char buf ']';
  Buffer.contents buf
