(** Stationary (invariant) density of the Markov-modulated Brownian
    motion defined by a second-order reward model, following the
    componentwise-accurate Cyclic Reduction approach of Nguyen–Poloni
    (arXiv:1605.01482).

    The accumulated reward of a second-order MRM [(Q, R, S)] is an MMBM:
    in state [i] the level drifts at rate [r_i] with instantaneous
    variance [sigma_i^2]. Regulated at zero (a fluid queue), its level
    has a stationary distribution whenever the modulating chain is
    irreducible and the mean drift [pi . r] is negative. The stationary
    density has the matrix-exponential form [p(x) = nu e^(Hx)] where
    [H] solves the quadratic matrix equation

      [1/2 H^2 Sigma - H R + Q = 0]

    restricted to its stable (Hurwitz) solvent. The solver shifts the
    equation to a unit-circle quadratic [W^2 A + W B + C = 0] whose
    coefficient triple is a QBD generator family (A, C >= 0, B an
    M-matrix negation, [A + B + C = Q]), and runs Cyclic Reduction on
    it. Because the triple keeps zero column sums through every CR
    step, all M-matrix diagonals are reconstructed additively from
    column sums (GTH style) and the whole iteration is subtraction-free
    — the componentwise-accuracy argument of the paper (DESIGN §12).

    Scope: every state needs strictly positive variance (use
    [regularize] to floor exact zeros) and the mean drift must be
    strictly negative (use [drain] to analyse capacity-C service of an
    otherwise increasing reward). Structured failures raise {!Error}
    with MRM06x diagnostics. *)

module Dense := Mrm_linalg.Dense
module Model := Mrm_core.Model
module Diagnostics := Mrm_check.Diagnostics

exception Error of Diagnostics.t
(** Structured failure: MRM062 (zero-variance states), MRM063 (positive
    mean drift), MRM064 (zero mean drift / null recurrent), MRM065 (CR
    did not converge), MRM066 (singular boundary system). *)

(** {1 Drift partition} *)

type partition = {
  positive : int list;  (** states with drift > 0 (after drain) *)
  negative : int list;  (** states with drift < 0 *)
  zero : int list;  (** states with drift exactly 0 *)
  zero_variance : int list;  (** states with sigma^2 = 0 *)
  mean_drift : float;  (** pi . r under the stationary law of [Q] *)
}

val partition : ?drain:float -> Model.t -> partition
(** Classify the model's states by drift sign and variance, and compute
    the stationary mean drift. Pure analysis — never raises {!Error};
    [mrm2 lint --stationary] is built on it.
    @raise Invalid_argument if the modulating chain is reducible. *)

(** {1 Solver} *)

type result = {
  nu : float array;  (** density at the boundary, [p(0)] *)
  h : Dense.t;  (** stable exponent: [p(x) = nu e^(Hx)] *)
  atoms : float array;
      (** point mass at level 0 per state (zero when every state has
          positive variance — the only case the solver accepts) *)
  marginal : float array;
      (** stationary phase distribution [atoms + int_0^inf p]; equals
          the CTMC stationary vector of [Q] (a cross-check, see
          [validate]) *)
  mean_level : float;  (** stationary mean of the regulated level *)
  reward_rate : float;
      (** stationary expected reward rate [marginal . rates] of the
          {e original} (pre-drain) model *)
  tau : float;  (** Cayley-like shift used to reach the unit circle *)
  iterations : int;  (** CR steps to componentwise convergence *)
  residual : float;
      (** relative residual of the recovered solvent in the original
          quadratic [1/2 H^2 Sigma - H R + Q] *)
  regularized : int;  (** number of states whose variance was floored *)
  warnings : Diagnostics.t list;
      (** MRM067 (variance floor applied), MRM068 (validation
          cross-check exceeded tolerance) *)
}

val solve :
  ?drain:float ->
  ?regularize:float ->
  ?eps:float ->
  ?max_iterations:int ->
  ?validate:bool ->
  ?on_iterate:(int -> float -> unit) ->
  Model.t ->
  result
(** [solve model] computes the stationary density of the regulated MMBM.

    [drain] (default 0) is subtracted from every reward rate first: the
    level then measures the backlog of a queue served at constant rate
    [drain]. [regularize] floors variances at the given value (states
    strictly below it are bumped and counted; MRM067 rides along in
    [warnings]). [eps] (default 1e-14) is the CR stopping threshold on
    the relative size of the down-coupling block. [max_iterations]
    defaults to 200. [validate] (default false) cross-checks the phase
    marginal against GTH on the modulating chain and appends MRM068 on
    disagreement beyond 1e-8. [on_iterate] observes [(step,
    down_block_norm)] after each CR step — the bench residual
    trajectory.

    @raise Error on structured failures (see {!Error}).
    @raise Invalid_argument if the modulating chain is reducible. *)

val density : result -> float -> float array
(** [density r x] is [p(x) = nu e^(Hx)] (per-state density row). *)

val cdf : result -> float -> float array
(** [cdf r x] is [P(level <= x, phase = i)] per state, including the
    boundary atom. *)

val total_density : result -> float -> float
(** Sum of {!density} over states — the marginal level density. *)
