module Dense = Mrm_linalg.Dense
module Lu = Mrm_linalg.Lu
module Expm = Mrm_linalg.Expm
module Vec = Mrm_linalg.Vec
module Sparse = Mrm_linalg.Sparse
module Generator = Mrm_ctmc.Generator
module Stationary = Mrm_ctmc.Stationary
module Model = Mrm_core.Model
module Diagnostics = Mrm_check.Diagnostics
module Trace = Mrm_obs.Trace
module Metrics = Mrm_obs.Metrics

exception Error of Diagnostics.t

let () =
  Printexc.register_printer (function
    | Error d -> Some (Format.asprintf "%a" Diagnostics.pp d)
    | _ -> None)

let m_solves = Metrics.counter "mmbm.solves"
let m_iterations = Metrics.counter "mmbm.cr_iterations"
let m_residual = Metrics.gauge "mmbm.residual"
let m_atom_mass = Metrics.gauge "mmbm.atom_mass"

(* ------------------------------------------------------------------ *)
(* Drift partition                                                      *)

type partition = {
  positive : int list;
  negative : int list;
  zero : int list;
  zero_variance : int list;
  mean_drift : float;
}

let partition ?(drain = 0.) (model : Model.t) =
  let n = Model.dim model in
  let pi = Stationary.gth model.Model.generator in
  let drift i = model.Model.rates.(i) -. drain in
  let states = List.init n (fun i -> i) in
  (* mrm:ignore SRC001 — sign classification is the point: a state is in
     the zero partition iff its drained rate is exactly zero *)
  let classify sign = List.filter (fun i -> compare (drift i) 0. = sign) states in
  let mean = ref 0. in
  for i = 0 to n - 1 do
    mean := !mean +. (pi.(i) *. drift i)
  done;
  {
    positive = classify 1;
    negative = classify (-1);
    zero = classify 0;
    zero_variance =
      (* mrm:ignore SRC001 — sentinel: exact zero variance is what makes
         the diffusion degenerate; near-zero is merely ill-conditioned *)
      List.filter (fun i -> model.Model.variances.(i) = 0.) states;
    mean_drift = !mean;
  }

(* ------------------------------------------------------------------ *)
(* Small dense helpers on [float array array] (row-major, n x n). The
   CR inner loop works on raw arrays so the subtraction-free structure
   stays explicit; [Dense.t] appears only at the API boundary. *)

let mat_mul n a b =
  let c = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    let ai = a.(i) and ci = c.(i) in
    for k = 0 to n - 1 do
      let aik = ai.(k) in
      (* mrm:ignore SRC001 — exact-zero skip: pure optimization, any
         nonzero (however small) still contributes *)
      if aik <> 0. then begin
        let bk = b.(k) in
        for j = 0 to n - 1 do
          ci.(j) <- ci.(j) +. (aik *. bk.(j))
        done
      end
    done
  done;
  c

let mat_norm_inf n a =
  let m = ref 0. in
  for i = 0 to n - 1 do
    let s = ref 0. in
    for j = 0 to n - 1 do
      s := !s +. Float.abs a.(i).(j)
    done;
    if !s > !m then m := !s
  done;
  !m

(* Column sums of [a + b], accumulated additively (both are >= 0 at
   every call site). *)
let col_sums2 n a b =
  let w = Array.make n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      w.(j) <- w.(j) +. a.(i).(j) +. b.(i).(j)
    done
  done;
  w

(* ------------------------------------------------------------------ *)
(* GTH-style factorization of the M-matrix [M = -A0]:

   [offd.(i).(j) = |M_ij| >= 0] for [i <> j] (the off-diagonal of [A0],
   nonnegative throughout CR), and [w.(j) >= 0] the column sums of [M]
   (equal to the column sums of [A_{-1} + A_1] by the CR
   zero-column-sum invariant). Diagonals are never stored: each pivot
   is reconstructed additively as the active-submatrix column sum, the
   Schur updates add same-sign magnitudes, and the column-sum vector
   updates additively ([w'_j = w_j + |M_kj| w_k / M_kk]) — no
   subtraction happens anywhere in the factorization. *)

let gth_factorize n offd w =
  let o = Array.map Array.copy offd and wv = Array.copy w in
  let lu = Array.make_matrix n n 0. in
  for k = 0 to n - 1 do
    let piv = ref wv.(k) in
    for i = k + 1 to n - 1 do
      piv := !piv +. o.(i).(k)
    done;
    if not (!piv > 0.) then
      raise
        (Error
           (Diagnostics.error ~code:"MRM066"
              ~context:[ ("pivot_column", string_of_int k) ]
              "singular pivot in subtraction-free elimination"));
    lu.(k).(k) <- !piv;
    for i = k + 1 to n - 1 do
      lu.(i).(k) <- -.(o.(i).(k) /. !piv)
    done;
    for j = k + 1 to n - 1 do
      lu.(k).(j) <- -.o.(k).(j)
    done;
    for i = k + 1 to n - 1 do
      if o.(i).(k) > 0. then
        for j = k + 1 to n - 1 do
          if i <> j then
            o.(i).(j) <- o.(i).(j) +. (o.(i).(k) *. o.(k).(j) /. !piv)
        done
    done;
    for j = k + 1 to n - 1 do
      wv.(j) <- wv.(j) +. (o.(k).(j) *. wv.(k) /. !piv)
    done
  done;
  lu

(* Solve [M x = b] from the GTH factors; for [b >= 0] every update adds
   a nonnegative term (the stored L/U off-diagonals are <= 0). *)
let gth_solve n lu b =
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let xk = x.(k) in
    (* mrm:ignore SRC001 — exact-zero skip: pure optimization *)
    if xk <> 0. then
      for i = k + 1 to n - 1 do
        x.(i) <- x.(i) -. (lu.(i).(k) *. xk)
      done
  done;
  for k = n - 1 downto 0 do
    let s = ref x.(k) in
    for j = k + 1 to n - 1 do
      s := !s -. (lu.(k).(j) *. x.(j))
    done;
    x.(k) <- !s /. lu.(k).(k)
  done;
  x

let gth_solve_matrix n lu b =
  let x = Array.make_matrix n n 0. in
  let col = Array.make n 0. in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      col.(i) <- b.(i).(j)
    done;
    let y = gth_solve n lu col in
    for i = 0 to n - 1 do
      x.(i).(j) <- y.(i)
    done
  done;
  x

(* ------------------------------------------------------------------ *)
(* Cyclic Reduction on [A_{-1} + A_0 G + A_1 G^2 = 0] where the triple
   has zero column sums, [A_{-1}, A_1 >= 0] and [A_0] has nonnegative
   off-diagonal (the transposed shifted quadratic built in [solve]).
   Returns the minimal nonnegative solvent G (spectral radius < 1) and
   the iteration count. [on_iterate] observes the down-coupling block
   norm after each step (the bench residual trajectory). *)

let cyclic_reduction ?on_iterate ~eps ~max_iterations n am0 a0_off0 ap0 =
  let am = ref (Array.map Array.copy am0) in
  let ap = ref (Array.map Array.copy ap0) in
  let a0_off = ref (Array.map Array.copy a0_off0) in
  let ahat = Array.make_matrix n n 0. in
  let scale = Float.max (mat_norm_inf n am0) 1e-300 in
  let rec loop k =
    if mat_norm_inf n !am <= eps *. scale then k
    else if k >= max_iterations then
      raise
        (Error
           (Diagnostics.error ~code:"MRM065"
              ~context:
                [
                  ("iterations", string_of_int k);
                  ( "down_block_norm",
                    Printf.sprintf "%.3e" (mat_norm_inf n !am /. scale) );
                ]
              "cyclic reduction did not converge"))
    else begin
      let w = col_sums2 n !am !ap in
      let lu = gth_factorize n !a0_off w in
      let x = gth_solve_matrix n lu !am in
      let y = gth_solve_matrix n lu !ap in
      let am' = mat_mul n !am x in
      let ap' = mat_mul n !ap y in
      let cross = mat_mul n !am y and cross' = mat_mul n !ap x in
      let off = Array.map Array.copy !a0_off in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then
            off.(i).(j) <- off.(i).(j) +. cross.(i).(j) +. cross'.(i).(j);
          ahat.(i).(j) <- ahat.(i).(j) +. cross'.(i).(j)
        done
      done;
      am := am';
      ap := ap';
      a0_off := off;
      (match on_iterate with
      | None -> ()
      | Some f -> f (k + 1) (mat_norm_inf n !am /. scale));
      loop (k + 1)
    end
  in
  let iters = loop 0 in
  (* Recovery: G = (-\hat A_0^(inf))^{-1} A_{-1}^(0), where
     \hat A_0^(k+1) = \hat A_0^(k) + A_1^(k) (-A_0^(k))^{-1} A_{-1}^(k)
     starting from A_0^(0) (whose diagonal is the negated initial
     column sums). The accumulated [ahat] holds the corrections; the
     assembled -\hat A_0 is an M-matrix whose off-diagonal stays
     nonpositive — only its diagonal mixes signs, the one place the
     recovery is not subtraction-free (DESIGN §12). *)
  let w0 = col_sums2 n am0 ap0 in
  let neg_ahat =
    Dense.init ~rows:n ~cols:n (fun i j ->
        let a0_init = if i = j then -.w0.(j) else a0_off0.(i).(j) in
        -.(a0_init +. ahat.(i).(j)))
  in
  let g =
    match Lu.factorize neg_ahat with
    | exception Lu.Singular k ->
        raise
          (Error
             (Diagnostics.error ~code:"MRM066"
                ~context:[ ("pivot_column", string_of_int k) ]
                "singular solvent-recovery system in cyclic reduction"))
    | f -> Lu.solve_matrix f (Dense.of_arrays am0)
  in
  (Dense.to_arrays g, iters)

(* ------------------------------------------------------------------ *)
(* Boundary vector: left null vector of K = 1/2 H Sigma - R (the zero
   net probability flux condition at the regulated boundary). K has
   rank n-1 when the solvent is simple, so a bordered system — one row
   of K^T replaced by the normalization row of ones — pins the
   direction. Row choices are tried in turn; the accepted solve must
   reproduce [nu K = 0] to working accuracy and be nonnegative. *)

let boundary_vector n k_mat =
  let kt = Dense.transpose k_mat in
  let k_norm = Float.max (Dense.norm_inf k_mat) 1e-300 in
  let try_row r =
    let bordered =
      Dense.init ~rows:n ~cols:n (fun i j ->
          if i = r then 1. else Dense.get kt i j)
    in
    let rhs = Array.init n (fun i -> if i = r then 1. else 0.) in
    match Lu.solve_system bordered rhs with
    | exception Lu.Singular _ -> None
    | nu ->
        let worst_neg = Array.fold_left (fun acc v -> Float.min acc v) 0. nu in
        let nu_norm = Vec.norm_inf nu in
        let residual = Vec.norm_inf (Dense.vm nu k_mat) in
        if
          Float.is_finite nu_norm && nu_norm > 0.
          && residual <= 1e-8 *. k_norm *. nu_norm
          && worst_neg >= -1e-8 *. nu_norm
        then Some (Array.map (fun v -> Float.max v 0.) nu)
        else None
  in
  let rec search r =
    if r < 0 then
      raise
        (Error
           (Diagnostics.error ~code:"MRM066"
              ~context:[ ("matrix", "boundary flux") ]
              "boundary system is singular or defective"))
    else match try_row r with Some nu -> nu | None -> search (r - 1)
  in
  search (n - 1)

(* ------------------------------------------------------------------ *)
(* Solver                                                               *)

type result = {
  nu : float array;
  h : Dense.t;
  atoms : float array;
  marginal : float array;
  mean_level : float;
  reward_rate : float;
  tau : float;
  iterations : int;
  residual : float;
  regularized : int;
  warnings : Diagnostics.t list;
}

let quadratic_residual n h sigma rates q_dense =
  (* || 1/2 H^2 Sigma - H R + Q || / (||1/2 H^2 Sigma|| + ||H R|| + ||Q||) *)
  let h2 = Dense.mul h h in
  let half_h2_sigma =
    Dense.init ~rows:n ~cols:n (fun i j ->
        0.5 *. Dense.get h2 i j *. sigma.(j))
  in
  let hr =
    Dense.init ~rows:n ~cols:n (fun i j -> Dense.get h i j *. rates.(j))
  in
  let res = Dense.add (Dense.sub half_h2_sigma hr) q_dense in
  let scale =
    Dense.norm_inf half_h2_sigma +. Dense.norm_inf hr
    +. Dense.norm_inf q_dense
  in
  Dense.norm_inf res /. Float.max scale 1e-300

let solve ?(drain = 0.) ?regularize ?(eps = 1e-14) ?(max_iterations = 200)
    ?(validate = false) ?on_iterate (model : Model.t) =
  let n = Model.dim model in
  Trace.with_span "mmbm.solve" ~attrs:[ ("states", Trace.Int n) ]
  @@ fun () ->
  Metrics.incr m_solves;
  let warnings = ref [] in
  (* Effective drift and variance vectors. *)
  let rates = Array.map (fun r -> r -. drain) model.Model.rates in
  let regularized = ref 0 in
  let sigma =
    match regularize with
    | None -> Array.copy model.Model.variances
    | Some floor ->
        if not (floor > 0. && Float.is_finite floor) then
          invalid_arg "Mmbm.solve: regularize must be > 0";
        Array.map
          (fun s ->
            if s < floor then begin
              incr regularized;
              floor
            end
            else s)
          model.Model.variances
  in
  if !regularized > 0 then
    warnings :=
      Diagnostics.warning ~code:"MRM067"
        ~context:
          [
            ("states", string_of_int !regularized);
            ("floor", Printf.sprintf "%g" (Option.get regularize));
          ]
        "variance floor applied to zero/near-zero variance states"
      :: !warnings;
  (let zero_var =
     Array.to_list
       (Array.of_seq
          (Seq.filter
             (fun i -> not (sigma.(i) > 0.))
             (Seq.init n (fun i -> i))))
   in
   if zero_var <> [] then
     raise
       (Error
          (Diagnostics.error ~code:"MRM062"
             ~context:
               [
                 ( "states",
                   String.concat ","
                     (List.map string_of_int
                        (List.filteri (fun k _ -> k < 8) zero_var)) );
                 ("count", string_of_int (List.length zero_var));
               ]
             "stationary analysis needs positive variance in every state \
              (use --regularize)")));
  (* Stability: mean drift under the stationary law must be < 0. *)
  let pi = Stationary.gth model.Model.generator in
  let mean_drift = ref 0. in
  for i = 0 to n - 1 do
    mean_drift := !mean_drift +. (pi.(i) *. rates.(i))
  done;
  let drift_scale =
    Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 1. rates
  in
  if Float.abs !mean_drift <= 1e-12 *. drift_scale then
    raise
      (Error
         (Diagnostics.error ~code:"MRM064"
            ~context:[ ("mean_drift", Printf.sprintf "%.6e" !mean_drift) ]
            "mean drift is zero: the regulated level is null recurrent"))
  else if !mean_drift > 0. then
    raise
      (Error
         (Diagnostics.error ~code:"MRM063"
            ~context:
              [
                ("mean_drift", Printf.sprintf "%.6e" !mean_drift);
                ("hint", Printf.sprintf "--drain > %g" (!mean_drift +. drain));
              ]
            "mean drift is positive: no stationary density (increase \
             --drain)"));
  (* Shift z = tau (w - 1): tau is the smallest value making
     C = tau^2 Sigma / 2 + tau R + Q entrywise nonnegative (the
     largest root of each state's diagonal quadratic). *)
  let q_dense = Sparse.to_dense (Generator.matrix model.Model.generator) in
  let q = Dense.to_arrays q_dense in
  let tau = ref 0. in
  for i = 0 to n - 1 do
    let s = sigma.(i) and r = rates.(i) in
    let ti = (-.r +. sqrt ((r *. r) -. (2. *. s *. q.(i).(i)))) /. s in
    if ti > !tau then tau := ti
  done;
  let tau = !tau in
  if not (tau > 0. && Float.is_finite tau) then
    raise
      (Error
         (Diagnostics.error ~code:"MRM066"
            ~context:[ ("tau", Printf.sprintf "%g" tau) ]
            "degenerate unit-circle shift"));
  Trace.add_attr "tau" (Trace.Float tau);
  (* Shifted triple (row orientation): A-hat = tau^2 Sigma / 2 (diag),
     B-hat = -tau^2 Sigma - tau R (diag), C-hat = tau^2 Sigma/2 + tau R
     + Q >= 0, with A-hat + B-hat + C-hat = Q. CR runs on the transpose
     so the solvent is one-sided: A_{-1} = C-hat^T, A_0 = B-hat,
     A_1 = A-hat. *)
  let am0 =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then
              Float.max 0.
                ((tau *. tau *. sigma.(i) /. 2.)
                +. (tau *. rates.(i))
                +. q.(i).(i))
            else q.(j).(i)))
  in
  let ap0 =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then tau *. tau *. sigma.(i) /. 2. else 0.))
  in
  let a0_off0 = Array.make_matrix n n 0. in
  let g, iterations =
    Trace.with_span "mmbm.cr" @@ fun () ->
    cyclic_reduction ?on_iterate ~eps ~max_iterations n am0 a0_off0 ap0
  in
  Metrics.incr ~by:iterations m_iterations;
  Trace.add_attr "iterations" (Trace.Int iterations);
  (* H = tau (G^T - I): the stable exponent of the density. *)
  let h =
    Dense.init ~rows:n ~cols:n (fun i j ->
        tau *. (g.(j).(i) -. if i = j then 1. else 0.))
  in
  let residual = quadratic_residual n h sigma rates q_dense in
  Metrics.set m_residual residual;
  Trace.add_attr "residual" (Trace.Float residual);
  (* Boundary condition, normalization, marginals. *)
  let nu, marginal, mean_level =
    Trace.with_span "mmbm.boundary" @@ fun () ->
    let k_mat =
      Dense.init ~rows:n ~cols:n (fun i j ->
          (0.5 *. Dense.get h i j *. sigma.(j))
          -. if i = j then rates.(i) else 0.)
    in
    let nu = boundary_vector n k_mat in
    let neg_h_t =
      Dense.init ~rows:n ~cols:n (fun i j -> -.Dense.get h j i)
    in
    let lu =
      match Lu.factorize neg_h_t with
      | exception Lu.Singular k ->
          raise
            (Error
               (Diagnostics.error ~code:"MRM066"
                  ~context:[ ("pivot_column", string_of_int k) ]
                  "density exponent is singular"))
      | f -> f
    in
    let m = Lu.solve lu nu in
    let mass = Vec.sum m in
    if not (mass > 0. && Float.is_finite mass) then
      raise
        (Error
           (Diagnostics.error ~code:"MRM066"
              ~context:[ ("mass", Printf.sprintf "%g" mass) ]
              "stationary density has non-positive total mass"));
    let nu = Array.map (fun v -> v /. mass) nu in
    let m = Array.map (fun v -> v /. mass) m in
    (* mean level = marginal . (-H)^{-1} 1, via (-H) u = 1. *)
    let neg_h = Dense.transpose neg_h_t in
    let u = Lu.solve_system neg_h (Array.make n 1.) in
    let mean = ref 0. in
    for i = 0 to n - 1 do
      mean := !mean +. (m.(i) *. u.(i))
    done;
    (nu, m, !mean)
  in
  let atoms = Array.make n 0. in
  Metrics.set m_atom_mass (Vec.sum atoms);
  if validate then begin
    let err = ref 0. in
    for i = 0 to n - 1 do
      err := Float.max !err (Float.abs (marginal.(i) -. pi.(i)))
    done;
    if !err > 1e-8 then
      warnings :=
        Diagnostics.warning ~code:"MRM068"
          ~context:[ ("max_abs_error", Printf.sprintf "%.3e" !err) ]
          "phase marginal disagrees with the CTMC stationary vector"
        :: !warnings
  end;
  let reward_rate = ref 0. in
  for i = 0 to n - 1 do
    reward_rate := !reward_rate +. (marginal.(i) *. model.Model.rates.(i))
  done;
  {
    nu;
    h;
    atoms;
    marginal;
    mean_level;
    reward_rate = !reward_rate;
    tau;
    iterations;
    residual;
    regularized = !regularized;
    warnings = List.rev !warnings;
  }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)

let density r x =
  let n = Array.length r.nu in
  if x < 0. then Array.make n 0.
  else Dense.vm r.nu (Expm.expm (Dense.scale x r.h))

let cdf r x =
  let n = Array.length r.nu in
  if x < 0. then Array.make n 0.
  else begin
    (* F(x) = atoms + marginal - nu e^{Hx} (-H)^{-1} *)
    let p = Dense.vm r.nu (Expm.expm (Dense.scale x r.h)) in
    let neg_h_t =
      Dense.init ~rows:n ~cols:n (fun i j -> -.Dense.get r.h j i)
    in
    let tail = Lu.solve_system neg_h_t p in
    Array.init n (fun i -> r.atoms.(i) +. r.marginal.(i) -. tail.(i))
  end

let total_density r x = Vec.sum (density r x)
