(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) and times the kernels behind them with Bechamel.

   Usage:
     dune exec bench/main.exe              # all experiments + micro-benches
     dune exec bench/main.exe -- fig3 fig4 # just the named experiments
     MRM2_FULL=1 dune exec bench/main.exe -- fig8   # paper-scale Table 2

   Experiments (see DESIGN.md section 3):
     fig1   sample realization of a second-order MRM        (Figure 1)
     table1 small-model parameters and structure            (Table 1, Figure 2)
     fig3   mean of the accumulated reward vs t             (Figure 3)
     fig4   2nd and 3rd moments vs t                        (Figure 4)
     fig5   distribution bounds, sigma^2 = 0                (Figure 5)
     fig6   distribution bounds, sigma^2 = 1                (Figure 6)
     fig7   distribution bounds, sigma^2 = 10               (Figure 7)
     agree  randomization vs ODE vs simulation cross-check  (Section 7 claim)
     fig8   large-model moments and iteration counts        (Table 2, Figure 8)
     cr     MMBM stationary density via cyclic reduction    (DESIGN section 12)
     micro  Bechamel micro-benchmarks of all kernels *)

module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Moments_ode = Mrm_core.Moments_ode
module Simulate = Mrm_core.Simulate
module Moment_bounds = Mrm_core.Moment_bounds
module Steady = Mrm_core.Steady
module Onoff = Mrm_models.Onoff
module Table = Mrm_util.Table
module Vec = Mrm_linalg.Vec

let sigmas = [ 0.; 1.; 10. ]
let small_model ~sigma2 = Onoff.model (Onoff.table1 ~sigma2)

let unconditional (model : Model.t) vectors order =
  Vec.dot model.Model.initial vectors.(order)

let wall_clock f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* Reproduced figures are also written as SVG + CSV under figures/. *)
let figures_dir = "figures"

(* Machine-readable perf records, one BENCH_<experiment>.json next to
   the figure outputs: wall-clock, iteration counts, model size and the
   domain count used, so perf regressions diff as JSON instead of
   scraping stdout. *)
let emit_bench ~name fields =
  if not (Sys.file_exists figures_dir) then Unix.mkdir figures_dir 0o755;
  let path = Filename.concat figures_dir ("BENCH_" ^ name ^ ".json") in
  (* Solver observability snapshot (Mrm_obs.Metrics) rides along with
     the timings; the dispatch loop resets the registry per experiment,
     so the counters cover exactly this experiment's solves. *)
  let json =
    Mrm_util.Json.(
      to_string
        (Obj
           (("experiment", Str name)
           :: (fields @ [ ("metrics", Mrm_obs.Metrics.to_json ()) ]))))
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "[written: %s]\n" path

let num x = Mrm_util.Json.Num x
let num_list xs = Mrm_util.Json.List (List.map num xs)

let emit_figure ~name ~title ~x_label ~y_label series csv_header csv_rows =
  if not (Sys.file_exists figures_dir) then Unix.mkdir figures_dir 0o755;
  let svg =
    Mrm_util.Svg_plot.render ~title ~x_label ~y_label series
  in
  Mrm_util.Svg_plot.write_file
    ~path:(Filename.concat figures_dir (name ^ ".svg"))
    svg;
  Mrm_util.Svg_plot.write_file
    ~path:(Filename.concat figures_dir (name ^ ".csv"))
    (Mrm_util.Svg_plot.csv ~header:csv_header csv_rows);
  Printf.printf "[written: %s/%s.svg, %s/%s.csv]\n\n" figures_dir name
    figures_dir name

(* ------------------------------------------------------------------ *)
(* Figure 1: a sample realization                                       *)

let fig1 () =
  print_endline
    "== Figure 1: sample realization of a second-order MRM ==\n\
     3-state model; state 2 has the largest drift AND variance, so the\n\
     reward can decrease during a sojourn there even though r_2 = 3.\n";
  let generator =
    Mrm_ctmc.Generator.of_triplets ~states:3
      [ (0, 1, 2.0); (1, 0, 1.0); (1, 2, 1.5); (2, 1, 2.0); (2, 0, 0.5) ]
  in
  let model =
    Model.make ~generator ~rates:[| 0.; 1.; 3. |] ~variances:[| 0.2; 0.5; 2.0 |]
      ~initial:[| 1.; 0.; 0. |]
  in
  let rng = Mrm_util.Rng.create ~seed:2004L () in
  let path = Simulate.joint_path model rng ~t_max:2.0 ~grid:40 in
  let rows =
    Array.to_list
      (Array.map
         (fun p ->
           [
             Table.float_cell p.Simulate.time;
             string_of_int p.Simulate.state;
             Table.float_cell p.Simulate.reward;
           ])
         path)
  in
  print_string (Table.render ~header:[ "t"; "Z(t)"; "B(t)" ] rows);
  (* The qualitative claim of the figure: some within-sojourn decrease. *)
  let decreases = ref 0 in
  Array.iteri
    (fun k p ->
      if k > 0 && p.Simulate.reward < path.(k - 1).Simulate.reward then
        incr decreases)
    path;
  Printf.printf "grid steps with decreasing reward: %d of %d\n\n" !decreases
    (Array.length path - 1)

(* ------------------------------------------------------------------ *)
(* Table 1 / Figure 2: the model                                        *)

let table1 () =
  print_endline "== Table 1 / Figure 2: the small example ==";
  print_string
    (Table.render
       ~header:[ "parameter"; "value" ]
       [
         [ "Capacity of the channel C"; "32" ];
         [ "Number of sources N"; "32" ];
         [ "ON period parameter alpha"; "4" ];
         [ "OFF period parameter beta"; "3" ];
         [ "Transmission rate r"; "1" ];
         [ "Variance sigma^2"; "0, 1, 10" ];
       ]);
  List.iter
    (fun sigma2 ->
      let m = small_model ~sigma2 in
      let q =
        Mrm_ctmc.Generator.uniformization_rate (m : Model.t).Model.generator
      in
      Printf.printf
        "sigma^2 = %-4g states = %d  q = %g  r_i = 32 - i, sigma_i^2 = %g i\n"
        sigma2 (Model.dim m) q sigma2)
    sigmas;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 3: mean accumulated reward                                    *)

let times_fig34 = Array.init 9 (fun k -> 0.25 *. float_of_int k)

let fig3 () =
  let stationary_rate = Steady.reward_rate (small_model ~sigma2:0.) in
  let data =
    Array.to_list
      (Array.map
         (fun t ->
           let means =
             List.map
               (fun sigma2 -> Randomization.mean (small_model ~sigma2) ~t)
               sigmas
           in
           (t, means @ [ stationary_rate *. t ]))
         times_fig34)
  in
  print_string
    (Table.render_series
       ~title:
         "Figure 3: mean accumulated reward (transient, all sources OFF at \
          t=0; last column = stationary start)"
       ~x_label:"t"
       ~columns:
         [ "s2=0"; "s2=1"; "s2=10"; "stationary" ]
       data);
  print_endline
    "(expected shape: the three transient curves coincide -- the mean is\n\
     independent of the variance -- and exceed the stationary line)";
  let pick k = List.map (fun (t, ys) -> (t, List.nth ys k)) data in
  emit_figure ~name:"fig3" ~title:"Mean of the accumulated reward"
    ~x_label:"t" ~y_label:"E B(t)"
    [
      { Mrm_util.Svg_plot.label = "s2=0"; points = pick 0; style = `Line };
      { label = "s2=1"; points = pick 1; style = `Points };
      { label = "s2=10"; points = pick 2; style = `Points };
      { label = "stationary"; points = pick 3; style = `Dashed };
    ]
    [ "t"; "m1_s0"; "m1_s1"; "m1_s10"; "stationary" ]
    (List.map (fun (t, ys) -> t :: ys) data)

(* ------------------------------------------------------------------ *)
(* Figure 4: second and third moments                                   *)

let fig4 () =
  let data =
    Array.to_list
      (Array.map
         (fun t ->
           let per_sigma =
             List.concat_map
               (fun sigma2 ->
                 let r =
                   Randomization.moments (small_model ~sigma2) ~t ~order:3
                 in
                 let m = small_model ~sigma2 in
                 [ unconditional m r.moments 2; unconditional m r.moments 3 ])
               sigmas
           in
           (t, per_sigma))
         times_fig34)
  in
  print_string
    (Table.render_series
       ~title:"Figure 4: 2nd and 3rd moments of the accumulated reward"
       ~x_label:"t"
       ~columns:
         [
           "m2(s2=0)"; "m3(s2=0)"; "m2(s2=1)"; "m3(s2=1)"; "m2(s2=10)";
           "m3(s2=10)";
         ]
       data);
  print_endline
    "(expected shape: higher sigma^2 gives strictly larger m2 and m3 at\n\
     every t > 0)";
  let pick k = List.map (fun (t, ys) -> (t, List.nth ys k)) data in
  emit_figure ~name:"fig4"
    ~title:"2nd and 3rd moments of the accumulated reward" ~x_label:"t"
    ~y_label:"E B(t)^n"
    [
      { Mrm_util.Svg_plot.label = "m2 s2=0"; points = pick 0; style = `Line };
      { label = "m3 s2=0"; points = pick 1; style = `Dashed };
      { label = "m2 s2=1"; points = pick 2; style = `Line };
      { label = "m3 s2=1"; points = pick 3; style = `Dashed };
      { label = "m2 s2=10"; points = pick 4; style = `Line };
      { label = "m3 s2=10"; points = pick 5; style = `Dashed };
    ]
    [ "t"; "m2_s0"; "m3_s0"; "m2_s1"; "m3_s1"; "m2_s10"; "m3_s10" ]
    (List.map (fun (t, ys) -> t :: ys) data)

(* ------------------------------------------------------------------ *)
(* Figures 5-7: distribution bounds at t = 0.5 from 23 moments          *)

let bounds_figure ~index ~sigma2 () =
  let t = 0.5 and order = 23 in
  let m = small_model ~sigma2 in
  let result = Randomization.moments m ~t ~order in
  let moments =
    Array.init (order + 1) (fun n -> unconditional m result.moments n)
  in
  let bounds = Moment_bounds.prepare moments in
  Printf.printf
    "== Figure %d: bounds for the distribution of B(0.5), sigma^2 = %g ==\n\
     (23 moments computed; %d usable after binary64 conditioning, %d Gauss \
     nodes)\n"
    index sigma2
    (Moment_bounds.moments_used bounds)
    (Moment_bounds.quadrature_size bounds);
  let mean = moments.(1) in
  let std = sqrt (moments.(2) -. (mean *. mean)) in
  let points =
    Array.init 13 (fun k -> mean +. ((float_of_int k -. 6.) /. 2. *. std))
  in
  let evaluated =
    Array.to_list (Array.map (Moment_bounds.cdf_bounds bounds) points)
  in
  let rows =
    List.map
      (fun b ->
        List.map Table.float_cell
          [ b.Moment_bounds.point; b.Moment_bounds.lower;
            b.Moment_bounds.upper ])
      evaluated
  in
  print_string (Table.render ~header:[ "x"; "lower"; "upper" ] rows);
  Printf.printf "mean = %.4f  std = %.4f\n" mean std;
  let curve select =
    List.map (fun b -> (b.Moment_bounds.point, select b)) evaluated
  in
  emit_figure
    ~name:(Printf.sprintf "fig%d" index)
    ~title:
      (Printf.sprintf "Bounds for the distribution of B(0.5), sigma^2 = %g"
         sigma2)
    ~x_label:"x" ~y_label:"F(x)"
    [
      {
        Mrm_util.Svg_plot.label = "lower";
        points = curve (fun b -> b.Moment_bounds.lower);
        style = `Line;
      };
      {
        label = "upper";
        points = curve (fun b -> b.Moment_bounds.upper);
        style = `Line;
      };
    ]
    [ "x"; "lower"; "upper" ]
    (List.map
       (fun b ->
         [ b.Moment_bounds.point; b.Moment_bounds.lower;
           b.Moment_bounds.upper ])
       evaluated)

let fig5 = bounds_figure ~index:5 ~sigma2:0.
let fig6 = bounds_figure ~index:6 ~sigma2:1.
let fig7 = bounds_figure ~index:7 ~sigma2:10.

(* ------------------------------------------------------------------ *)
(* Cross-validation: the Section-7 claim that randomization, the ODE
   solver and simulation agree, with randomization fastest.             *)

let agree () =
  print_endline
    "== Cross-validation (Section 7): randomization vs ODE vs simulation ==";
  let m = small_model ~sigma2:10. in
  let t = 1.0 and order = 3 in
  let rand, rand_time =
    wall_clock (fun () -> Randomization.moments m ~t ~order)
  in
  let ode, ode_time = wall_clock (fun () -> Moments_ode.moments m ~t ~order) in
  let replicas = 100_000 in
  let sim, sim_time =
    wall_clock (fun () ->
        Simulate.estimate_moments m
          (Mrm_util.Rng.create ~seed:42L ())
          ~t ~max_order:order ~replicas)
  in
  let rows =
    List.map
      (fun n ->
        let s = sim.(n - 1) in
        [
          string_of_int n;
          Table.float_cell (unconditional m rand.Randomization.moments n);
          Table.float_cell (unconditional m ode n);
          Printf.sprintf "%s [%s, %s]" (Table.float_cell s.Simulate.value)
            (Table.float_cell s.Simulate.ci_low)
            (Table.float_cell s.Simulate.ci_high);
        ])
      [ 1; 2; 3 ]
  in
  print_string
    (Table.render
       ~header:[ "n"; "randomization"; "ODE (Heun)"; "simulation (95% CI)" ]
       rows);
  Printf.printf
    "wall clock: randomization %.4fs | ODE %.4fs | simulation (%d replicas) \
     %.4fs\n"
    rand_time ode_time replicas sim_time;
  emit_bench ~name:"agree"
    [
      ("states", num (float_of_int (Model.dim m)));
      ("order", num (float_of_int order));
      ("t", num t);
      ("iterations", num (float_of_int rand.Randomization.diagnostics.iterations));
      ("replicas", num (float_of_int replicas));
      ("jobs", num 1.);
      ("randomization_seconds", num rand_time);
      ("ode_seconds", num ode_time);
      ("simulation_seconds", num sim_time);
    ];
  print_endline
    "(expected shape: all three agree; randomization is the fastest)\n"

(* ------------------------------------------------------------------ *)
(* Table 2 / Figure 8: the large model                                  *)

let fig8 () =
  let full = Sys.getenv_opt "MRM2_FULL" = Some "1" in
  let params =
    if full then Onoff.table2 else Onoff.scaled_table2 ~sources:10_000
  in
  Printf.printf
    "== Table 2 / Figure 8: large model (N = C = %d, sigma^2 = 10%s) ==\n"
    params.Onoff.sources
    (if full then ", paper scale" else "; MRM2_FULL=1 for N = 200,000");
  let model = Onoff.model params in
  let q =
    Mrm_ctmc.Generator.uniformization_rate (model : Model.t).Model.generator
  in
  Printf.printf "states = %d, q = %g (paper: q = 800,000 at full scale)\n"
    (Model.dim model) q;
  let times = [| 0.01; 0.02; 0.03; 0.04; 0.05 |] in
  let sweep ?pool () =
    Array.map
      (fun t ->
        let result, elapsed =
          wall_clock (fun () ->
              Randomization.moments ~eps:1e-9 ?pool model ~t ~order:3)
        in
        (t, result, elapsed))
      times
  in
  let measured = sweep () in
  (* Parallel leg: same sweep on a domain pool (MRM2_JOBS or every
     core), reported against the sequential one. On a single-core box
     the speedup hovers around 1; the engine tests assert the values
     match regardless. *)
  let jobs = Mrm_engine.Pool.default_jobs () in
  let parallel =
    if jobs <= 1 then None
    else
      Some
        (Mrm_engine.Pool.with_pool ~jobs (fun pool -> sweep ~pool ()))
  in
  let rows =
    Array.to_list
      (Array.map
         (fun (t, result, elapsed) ->
           let m n = unconditional model result.Randomization.moments n in
           [
             Table.float_cell t;
             Table.float_cell (m 1);
             Table.float_cell (m 2);
             Table.float_cell (m 3);
             string_of_int result.Randomization.diagnostics.iterations;
             Table.float_cell (q *. t);
             Printf.sprintf "%.2f" elapsed;
           ])
         measured)
  in
  print_string
    (Table.render
       ~header:[ "t"; "m1"; "m2"; "m3"; "G"; "qt"; "seconds" ]
       rows);
  let series n =
    Array.to_list
      (Array.map
         (fun (t, result, _) ->
           (t, unconditional model result.Randomization.moments n))
         measured)
  in
  emit_figure ~name:"fig8"
    ~title:"Moments of the accumulated reward, large example" ~x_label:"t"
    ~y_label:"E B(t)^n (log-ish scales differ per curve)"
    [
      { Mrm_util.Svg_plot.label = "m1"; points = series 1; style = `Line };
      { label = "m2"; points = series 2; style = `Dashed };
      { label = "m3"; points = series 3; style = `Points };
    ]
    [ "t"; "m1"; "m2"; "m3"; "G"; "seconds" ]
    (Array.to_list
       (Array.map
          (fun (t, result, elapsed) ->
            let m n = unconditional model result.Randomization.moments n in
            [
              t; m 1; m 2; m 3;
              float_of_int result.Randomization.diagnostics.iterations;
              elapsed;
            ])
          measured));
  let states = Model.dim model in
  let seq_seconds =
    Array.to_list (Array.map (fun (_, _, s) -> s) measured)
  in
  let seq_total = List.fold_left ( +. ) 0. seq_seconds in
  let parallel_fields =
    match parallel with
    | None ->
        (* A fig8 record without a parallel leg is not a perf record of
           the parallel sweep at all — make skipping loud, and fatal
           where a committed BENCH_fig8.json could silently regress to
           a jobs = 1 run (CI, or an explicit request). *)
        prerr_endline
          "=========================================================";
        prerr_endline
          "WARNING: fig8 parallel leg SKIPPED (jobs = 1).";
        prerr_endline
          "The emitted BENCH_fig8.json has no speedup/parity fields.";
        prerr_endline
          "Set MRM2_JOBS >= 2 (on a multi-core box) to measure it.";
        prerr_endline
          "=========================================================";
        if
          Sys.getenv_opt "CI" <> None
          || Sys.getenv_opt "MRM2_REQUIRE_PARALLEL" = Some "1"
        then begin
          prerr_endline
            "fig8: refusing to emit a sequential-only record here \
             (CI/MRM2_REQUIRE_PARALLEL); exiting 2.";
          exit 2
        end;
        []
    | Some par_measured ->
        let par_seconds =
          Array.to_list (Array.map (fun (_, _, s) -> s) par_measured)
        in
        let par_total = List.fold_left ( +. ) 0. par_seconds in
        let max_rel_diff = ref 0. in
        Array.iteri
          (fun k (_, seq_result, _) ->
            let _, par_result, _ = par_measured.(k) in
            for n = 0 to 3 do
              let a = unconditional model seq_result.Randomization.moments n in
              let b = unconditional model par_result.Randomization.moments n in
              max_rel_diff :=
                Float.max !max_rel_diff
                  (abs_float (a -. b) /. (1. +. abs_float b))
            done)
          measured;
        Printf.printf
          "parallel leg (jobs = %d): %.2fs vs %.2fs sequential (speedup \
           %.2fx); max relative difference %.2e\n"
          jobs par_total seq_total
          (seq_total /. Float.max par_total 1e-9)
          !max_rel_diff;
        [
          ("parallel_seconds", num_list par_seconds);
          ("parallel_total_seconds", num par_total);
          ("speedup", num (seq_total /. Float.max par_total 1e-9));
          ("max_rel_diff", num !max_rel_diff);
        ]
  in
  let structure =
    Mrm_engine.Kernel.structure_kind
      (Mrm_engine.Kernel.detect
         (Mrm_ctmc.Generator.uniformized model.Model.generator ~rate:q))
  in
  emit_bench ~name:"fig8"
    ([
       ("states", num (float_of_int states));
       ("order", num 3.);
       ("eps", num 1e-9);
       ("q", num q);
       ("structure", Mrm_util.Json.Str structure);
       ("jobs", num (float_of_int jobs));
       ("times", num_list (Array.to_list times));
       ( "iterations",
         num_list
           (Array.to_list
              (Array.map
                 (fun (_, r, _) ->
                   float_of_int r.Randomization.diagnostics.iterations)
                 measured)) );
       ("sequential_seconds", num_list seq_seconds);
       ("sequential_total_seconds", num seq_total);
     ]
    @ parallel_fields);
  Printf.printf
    "per-iteration flops ~ (3 + 1 + 1) x %d x 4 (three moments), as in the \
     paper's complexity count.\n"
    states;
  if full then
    print_endline
      "paper reference: G = 41,588 at t = 0.05 with eps = 1e-9 (our G is\n\
       larger by ~2n because of the corrected Theorem-4 tail index -- see\n\
       DESIGN.md).";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Distribution-method comparison (beyond the paper: the eq.-(2)
   transform route made practical via Gil-Pelaez inversion).            *)

let dist () =
  print_endline
    "== Distribution methods on the Table-1 model (sigma^2 = 10, t = 0.5) ==";
  let m = small_model ~sigma2:10. in
  let t = 0.5 in
  let result = Randomization.moments m ~t ~order:23 in
  let moments = Array.init 24 (fun n -> unconditional m result.moments n) in
  let mean = moments.(1) in
  let std = sqrt (moments.(2) -. (mean *. mean)) in
  let points =
    Array.init 9 (fun k -> mean +. ((float_of_int k -. 4.) /. 1.5 *. std))
  in
  let bounds, bounds_time =
    wall_clock (fun () ->
        let b = Moment_bounds.prepare moments in
        Array.map (Moment_bounds.cdf_bounds b) points)
  in
  let gil_pelaez, gp_time =
    wall_clock (fun () ->
        fst (Mrm_core.Transform_distribution.cdf_grid m ~t points))
  in
  let empirical, sim_time =
    wall_clock (fun () ->
        let rng = Mrm_util.Rng.create ~seed:11L () in
        let xs = Simulate.sample m rng ~t ~replicas:100_000 in
        Array.map (fun x -> Mrm_util.Stats.empirical_cdf xs x) points)
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun k x ->
           [
             Table.float_cell x;
             Table.float_cell bounds.(k).Moment_bounds.lower;
             Table.float_cell bounds.(k).Moment_bounds.upper;
             Table.float_cell gil_pelaez.(k);
             Table.float_cell empirical.(k);
           ])
         points)
  in
  print_string
    (Table.render
       ~header:[ "x"; "bound-low"; "bound-up"; "Gil-Pelaez"; "simulation" ]
       rows);
  Printf.printf
    "wall clock: bounds %.3fs | Gil-Pelaez %.3fs | simulation %.3fs\n"
    bounds_time gp_time sim_time;
  print_endline
    "(expected shape: Gil-Pelaez and simulation agree pointwise and lie\n\
     inside the moment-bound envelope)\n"

(* ------------------------------------------------------------------ *)
(* Section 4 contrast: second-order fluid model (bounded at 0) vs
   second-order reward model (unbounded). Same Q, R, S; the boundary
   condition changes everything — the paper's argument for why the
   reward analysis is the simpler problem.                              *)

let fluid () =
  print_endline
    "== Section-4 contrast: fluid queue vs unbounded reward (same Q,R,S) ==";
  let generator =
    Mrm_ctmc.Generator.of_triplets ~states:2 [ (0, 1, 1.); (1, 0, 2.) ]
  in
  let rates = [| 1.5; -6. |] and variances = [| 0.5; 1. |] in
  let queue = Mrm_fluid.Fluid.make ~generator ~rates ~variances in
  let s, fluid_time = wall_clock (fun () -> Mrm_fluid.Fluid.stationary queue) in
  Printf.printf
    "fluid queue: mean drift %.3f, stationary mean level %.4f, tail decay \
     %.4f (solved in %.4fs via a 4x4 quadratic eigenproblem)\n"
    (Mrm_fluid.Fluid.mean_drift s)
    (Mrm_fluid.Fluid.mean_level s)
    (Mrm_fluid.Fluid.decay_rate s)
    fluid_time;
  let rows =
    List.map
      (fun x ->
        [ Table.float_cell x; Table.float_cell (Mrm_fluid.Fluid.ccdf s x) ])
      [ 0.5; 1.; 2.; 4.; 8. ]
  in
  print_string (Table.render ~header:[ "x"; "P(level > x)" ] rows);
  (* The unbounded reward twin drifts to -infinity instead of sitting at
     a stationary level. *)
  let reward_model =
    Model.make ~generator ~rates ~variances ~initial:[| 1.; 0. |]
  in
  let reward_rows =
    List.map
      (fun t ->
        [
          Table.float_cell t;
          Table.float_cell (Randomization.mean reward_model ~t);
          Table.float_cell
            (sqrt (Randomization.variance reward_model ~t));
        ])
      [ 1.; 4.; 16.; 64. ]
  in
  print_string
    (Table.render ~header:[ "t"; "E B(t)"; "std B(t)" ] reward_rows);
  print_endline
    "(expected shape: the reflected fluid level is stationary; the\n\
     unbounded reward drifts linearly to -infinity with sqrt-t spread --\n\
     same coefficients, different boundary behaviour)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out.                 *)

let ablation_eps () =
  print_endline
    "== Ablation: precision eps vs truncation point G and runtime ==\n\
     (Theorem 4 with the corrected tail index; sigma^2 = 10, t = 2)";
  let m = small_model ~sigma2:10. in
  let rows =
    List.map
      (fun eps ->
        let result, elapsed =
          wall_clock (fun () -> Randomization.moments ~eps m ~t:2. ~order:3)
        in
        [
          Printf.sprintf "%.0e" eps;
          string_of_int result.Randomization.diagnostics.iterations;
          Printf.sprintf "%.1f"
            (result.Randomization.diagnostics.log_error_bound /. log 10.);
          Table.float_cell (unconditional m result.Randomization.moments 3);
          Printf.sprintf "%.4f" (elapsed *. 1000.);
        ])
      [ 1e-3; 1e-6; 1e-9; 1e-12 ]
  in
  print_string
    (Table.render
       ~header:[ "eps"; "G"; "log10 bound"; "m3"; "ms" ]
       rows);
  print_endline
    "(expected shape: G grows slowly (sub-linearly) as eps shrinks; m3\n\
     stabilizes to all shown digits)\n"

let ablation_moment_count () =
  print_endline
    "== Ablation: number of moments vs bound tightness (Figure 6 setup) ==";
  let m = small_model ~sigma2:1. in
  let t = 0.5 in
  let result = Randomization.moments m ~t ~order:23 in
  let all_moments =
    Array.init 24 (fun n -> unconditional m result.moments n)
  in
  let mean = all_moments.(1) in
  let rows =
    List.map
      (fun count ->
        let b = Moment_bounds.prepare (Array.sub all_moments 0 count) in
        let at_mean = Moment_bounds.cdf_bounds b mean in
        [
          string_of_int count;
          string_of_int (Moment_bounds.quadrature_size b);
          Table.float_cell at_mean.Moment_bounds.lower;
          Table.float_cell at_mean.Moment_bounds.upper;
          Table.float_cell
            (at_mean.Moment_bounds.upper -. at_mean.Moment_bounds.lower);
        ])
      [ 5; 9; 13; 17; 21; 24 ]
  in
  print_string
    (Table.render
       ~header:[ "moments"; "nodes"; "F low"; "F up"; "gap at mean" ]
       rows);
  print_endline
    "(expected shape: the envelope tightens monotonically with the moment\n\
     count -- the paper's rationale for computing 23 moments)\n"

let ablation_ode_methods () =
  print_endline
    "== Ablation: ODE stepper vs error against randomization (order 2) ==";
  let m = small_model ~sigma2:10. in
  let t = 1.0 in
  let reference = Randomization.moment ~eps:1e-13 m ~t ~order:2 in
  let rows =
    List.concat_map
      (fun (name, method_) ->
        List.map
          (fun steps ->
            let value = Moments_ode.moment ~method_ ~steps m ~t ~order:2 in
            [
              name;
              string_of_int steps;
              Table.float_cell value;
              Printf.sprintf "%.2e" (abs_float (value -. reference));
            ])
          [ 512; 2048; 8192 ])
      [
        ("euler", Mrm_ode.Ode.Euler);
        ("heun", Mrm_ode.Ode.Heun);
        ("rk4", Mrm_ode.Ode.Rk4);
      ]
  in
  print_string
    (Table.render ~header:[ "method"; "steps"; "m2"; "abs error" ] rows);
  Printf.printf "randomization reference: %.10g\n" reference;
  print_endline
    "(expected shape: error drops ~2x/4x/16x per step doubling for\n\
     Euler/Heun/RK4; randomization needs no such sweep)\n"

let ablation_sweep () =
  print_endline
    "== Ablation: shared-sweep vs per-point randomization (Figure 3/4 grid) ==";
  let m = small_model ~sigma2:10. in
  let times = Array.init 9 (fun k -> 0.25 *. float_of_int k) in
  let shared, shared_time =
    wall_clock (fun () -> Randomization.moments_at_times m ~times ~order:3)
  in
  let pointwise, pointwise_time =
    wall_clock (fun () ->
        Array.map (fun t -> Randomization.moments m ~t ~order:3) times)
  in
  let worst = ref 0. in
  Array.iteri
    (fun k r ->
      for n = 0 to 3 do
        let a = unconditional m r.Randomization.moments n in
        let b = unconditional m pointwise.(k).Randomization.moments n in
        worst := Float.max !worst (abs_float (a -. b) /. (1. +. abs_float b))
      done)
    shared;
  Printf.printf
    "9 time points, order 3: shared sweep %.4fs vs pointwise %.4fs \
     (speedup %.1fx); max relative difference %.2e\n"
    shared_time pointwise_time
    (pointwise_time /. Float.max shared_time 1e-9)
    !worst;
  print_endline
    "(the U^(n)(k) recursion is time-independent — one pass to max G \
     serves\nevery time point; the per-point road is what the paper's \
     pseudo-code does)\n"

let ablation_impulse () =
  print_endline
    "== Extension: impulse rewards (restriction the paper relaxes) ==\n\
     Machine-repair model with a lump inspection cost per repair completion.";
  let p = Mrm_models.Machine_repair.default in
  let base = Mrm_models.Machine_repair.model p in
  let generator = (base : Model.t).Model.generator in
  let states = Mrm_ctmc.Generator.dim generator in
  let impulses = ref [] in
  for i = 1 to states - 1 do
    (* Repair transitions i -> i-1 carry a unit impulse. *)
    impulses := (i, i - 1, 1.0) :: !impulses
  done;
  let model = Mrm_core.Impulse.make base !impulses in
  let rows =
    List.map
      (fun t ->
        let with_impulse = Mrm_core.Impulse.mean model ~t in
        let base_only = Randomization.mean base ~t in
        [
          Table.float_cell t;
          Table.float_cell base_only;
          Table.float_cell with_impulse;
          Table.float_cell (with_impulse -. base_only);
        ])
      [ 1.; 2.; 4.; 8. ]
  in
  print_string
    (Table.render
       ~header:[ "t"; "rate reward"; "+ impulses"; "mean repairs" ]
       rows);
  print_endline
    "(the impulse column minus the rate column counts expected repair\n\
     completions -- validated against a transient-integral oracle in the\n\
     test suite)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure kernel.    *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  print_endline "== Bechamel micro-benchmarks (ns per run, OLS estimate) ==";
  let model10 = small_model ~sigma2:10. in
  let model0 = small_model ~sigma2:0. in
  let bounds_input =
    let order = 23 in
    let r = Randomization.moments model10 ~t:0.5 ~order in
    Array.init (order + 1) (fun n ->
        unconditional model10 r.Randomization.moments n)
  in
  let path_model =
    let generator =
      Mrm_ctmc.Generator.of_triplets ~states:3
        [ (0, 1, 2.0); (1, 0, 1.0); (1, 2, 1.5); (2, 1, 2.0); (2, 0, 0.5) ]
    in
    Model.make ~generator ~rates:[| 0.; 1.; 3. |]
      ~variances:[| 0.2; 0.5; 2.0 |] ~initial:[| 1.; 0.; 0. |]
  in
  let scaled = Onoff.model (Onoff.scaled_table2 ~sources:2_000) in
  let rng = Mrm_util.Rng.create ~seed:7L () in
  let tests =
    [
      (* Figure 1: path sampling. *)
      Test.make ~name:"fig1/joint-path-3state"
        (Staged.stage (fun () ->
             ignore (Simulate.joint_path path_model rng ~t_max:2. ~grid:100)));
      (* Figure 3: first moment of the small model. *)
      Test.make ~name:"fig3/mean-sigma10-t2"
        (Staged.stage (fun () ->
             ignore (Randomization.moments model10 ~t:2. ~order:1)));
      (* Figure 4: third moment of the small model. *)
      Test.make ~name:"fig4/moments3-sigma10-t2"
        (Staged.stage (fun () ->
             ignore (Randomization.moments model10 ~t:2. ~order:3)));
      (* The paper's cost claim: first-order vs second-order, same model. *)
      Test.make ~name:"cost/first-order-moments3"
        (Staged.stage (fun () ->
             ignore (Randomization.moments model0 ~t:2. ~order:3)));
      (* Figures 5-7: moment-bound evaluation. *)
      Test.make ~name:"fig5-7/bounds-23-moments"
        (Staged.stage (fun () ->
             let b = Moment_bounds.prepare bounds_input in
             for k = 0 to 12 do
               ignore
                 (Moment_bounds.cdf_bounds b (10. +. float_of_int k))
             done));
      (* Cross-validation comparators (agree). *)
      Test.make ~name:"agree/ode-heun-moments2"
        (Staged.stage (fun () ->
             ignore (Moments_ode.moments model10 ~t:1. ~order:2)));
      Test.make ~name:"agree/simulate-500-replicas"
        (Staged.stage (fun () ->
             ignore (Simulate.sample model10 rng ~t:1. ~replicas:500)));
      (* Table 2 / Figure 8: one sparse randomization run at reduced N. *)
      Test.make ~name:"fig8/randomization-N2000-t0.01"
        (Staged.stage (fun () ->
             ignore (Randomization.moments scaled ~t:0.01 ~order:3)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"mrm2" tests)
  in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  let merged = Analyze.merge ols instances [ analyzed ] in
  let clock_label = Measure.label Instance.monotonic_clock in
  let per_test = Hashtbl.find merged clock_label in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (value :: _) -> value
        | _ -> Float.nan
      in
      rows := (name, estimate) :: !rows)
    per_test;
  let sorted = List.sort compare !rows in
  print_string
    (Table.render
       ~header:[ "kernel"; "ns/run"; "ms/run" ]
       (List.map
          (fun (name, ns) ->
            [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.3f" (ns /. 1e6) ])
          sorted));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Stationary MMBM density via componentwise-accurate cyclic reduction
   (DESIGN section 12): iteration counts, residual trajectory and wall
   time across model sizes, cross-checked against the steady reward
   rate computed independently by GTH on the modulating chain.          *)

let cr () =
  print_endline "=== cr: MMBM stationary density via cyclic reduction ===";
  let sizes = [ 4; 8; 16; 32; 64 ] in
  let records =
    List.map
      (fun sources ->
        let model =
          Onoff.model
            { (Onoff.table1 ~sigma2:1.) with
              sources;
              capacity = float_of_int sources;
            }
        in
        let rstar = Steady.reward_rate model in
        (* serve faster than the mean arrival rate so the drained drift
           is negative and the backlog is positive recurrent *)
        let drain = rstar +. 2. in
        let trajectory = ref [] in
        let r, seconds =
          wall_clock (fun () ->
              Mrm_mmbm.Mmbm.solve ~drain ~regularize:1e-3 ~validate:true
                ~on_iterate:(fun _ down -> trajectory := down :: !trajectory)
                model)
        in
        let rate_err =
          abs_float (r.Mrm_mmbm.Mmbm.reward_rate -. rstar)
          /. (1. +. abs_float rstar)
        in
        Printf.printf
          "n = %3d: %2d CR iterations, residual %.2e, %.4fs, mean level \
           %.6g, reward-rate err vs GTH %.2e\n"
          (sources + 1) r.Mrm_mmbm.Mmbm.iterations r.Mrm_mmbm.Mmbm.residual
          seconds r.Mrm_mmbm.Mmbm.mean_level rate_err;
        (sources + 1, r, seconds, List.rev !trajectory, rate_err))
      sizes
  in
  let largest_trajectory =
    match List.rev records with
    | (_, _, _, trajectory, _) :: _ -> trajectory
    | [] -> []
  in
  emit_bench ~name:"cr"
    [
      ( "states",
        num_list (List.map (fun (n, _, _, _, _) -> float_of_int n) records) );
      ("drift_shift", num 2.);
      ("regularize", num 1e-3);
      ( "iterations",
        num_list
          (List.map
             (fun (_, r, _, _, _) ->
               float_of_int r.Mrm_mmbm.Mmbm.iterations)
             records) );
      ( "residuals",
        num_list
          (List.map (fun (_, r, _, _, _) -> r.Mrm_mmbm.Mmbm.residual) records)
      );
      ( "tau",
        num_list (List.map (fun (_, r, _, _, _) -> r.Mrm_mmbm.Mmbm.tau) records)
      );
      ("seconds", num_list (List.map (fun (_, _, s, _, _) -> s) records));
      ( "reward_rate_rel_err",
        num_list (List.map (fun (_, _, _, _, e) -> e) records) );
      ("largest_residual_trajectory", num_list largest_trajectory);
    ];
  print_newline ()

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1); ("table1", table1); ("fig3", fig3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("agree", agree);
    ("fig8", fig8); ("dist", dist); ("fluid", fluid); ("cr", cr);
    ("ablation-eps", ablation_eps);
    ("ablation-moments", ablation_moment_count);
    ("ablation-ode", ablation_ode_methods);
    ("ablation-impulse", ablation_impulse); ("ablation-sweep", ablation_sweep);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          Mrm_obs.Metrics.reset ();
          f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
